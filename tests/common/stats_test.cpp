#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rgb::common {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -3.0);
  EXPECT_EQ(acc.max(), 3.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, SingleValueQuantiles) {
  Histogram h;
  h.add(100.0);
  // Geometric buckets give ~growth-factor relative resolution.
  EXPECT_NEAR(h.p50(), 100.0, 12.0);
  EXPECT_NEAR(h.p99(), 100.0, 12.0);
}

TEST(Histogram, MedianOfUniformRamp) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 500.0, 60.0);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 100.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(Histogram, SubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.add(0.0);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.p50(), 1.0);
}

TEST(Histogram, OverflowClampsToLastBucket) {
  Histogram h{/*max_value=*/1000.0};
  h.add(1e18);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.p50(), 900.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(10.0);
  b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_LE(a.quantile(0.25), 12.0);
  EXPECT_GT(a.quantile(0.99), 800.0);
}

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace rgb::common
