#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rgb::common {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -3.0);
  EXPECT_EQ(acc.max(), 3.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, SingleValueQuantiles) {
  Histogram h;
  h.add(100.0);
  // Geometric buckets give ~growth-factor relative resolution.
  EXPECT_NEAR(h.p50(), 100.0, 12.0);
  EXPECT_NEAR(h.p99(), 100.0, 12.0);
}

TEST(Histogram, MedianOfUniformRamp) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 500.0, 60.0);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 100.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(Histogram, SubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.add(0.0);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.p50(), 1.0);
}

TEST(Histogram, OverflowClampsToLastBucket) {
  Histogram h{/*max_value=*/1000.0};
  h.add(1e18);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.p50(), 900.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(10.0);
  b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_LE(a.quantile(0.25), 12.0);
  EXPECT_GT(a.quantile(0.99), 800.0);
}

TEST(Histogram, QuantileRelativeErrorIsBoundedVsExact) {
  // Deterministic pseudo-random positive samples (no RNG dependency).
  std::vector<double> values;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(1.0 + static_cast<double>(x % 1'000'000));
  }
  Histogram h;
  for (const double v : values) h.add(v);
  std::sort(values.begin(), values.end());

  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double approx = h.quantile(q);
    // Geometric buckets (growth 1.1) return the bucket upper bound, so the
    // estimate sits in [exact, exact * growth]: never below, at most ~10%
    // relative error above.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * 1.1 + 1e-9) << "q=" << q;
  }
}

TEST(Histogram, TailQuantileAccessorsHoldTheSameBound) {
  // The bench latency digests report p50/p90/p99/p999/max; the tail
  // accessors must obey the same [exact, exact * growth] bound as
  // quantile() so the digests are trustworthy at the 1-in-1000 tail.
  std::vector<double> values;
  std::uint64_t x = 0xD1B54A32D192ED03ULL;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(1.0 + static_cast<double>(x % 10'000'000));
  }
  Histogram h;
  for (const double v : values) h.add(v);
  std::sort(values.begin(), values.end());

  const auto exact_at = [&](double q) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    return values[rank - 1];
  };
  const struct {
    double q;
    double approx;
  } probes[] = {{0.50, h.p50()}, {0.90, h.p90()},
                {0.99, h.p99()}, {0.999, h.p999()}};
  for (const auto& probe : probes) {
    const double exact = exact_at(probe.q);
    EXPECT_GE(probe.approx, exact) << "q=" << probe.q;
    EXPECT_LE(probe.approx, exact * 1.1 + 1e-9) << "q=" << probe.q;
  }
  EXPECT_DOUBLE_EQ(h.max(), values.back());  // max stays exact, not bucketed
}

TEST(Histogram, MergeEqualsCombinedAddStream) {
  Histogram combined, left, right;
  for (int i = 1; i <= 400; ++i) {
    const double v = static_cast<double>((i * 7919) % 10000 + 1);
    combined.add(v);
    (i % 3 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  // Identical bucket contents -> identical quantiles at every probe point.
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, MaxIsExactAndSurvivesOverflowClamp) {
  Histogram h{/*max_value=*/1000.0};
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  h.add(123456.0);  // clamped into the overflow bucket...
  EXPECT_DOUBLE_EQ(h.max(), 123456.0);  // ...but max stays exact
  EXPECT_LE(h.quantile(1.0), 1200.0);   // quantile read is clamped

  Histogram other{/*max_value=*/1000.0};
  other.add(999999.0);
  h.merge(other);
  EXPECT_DOUBLE_EQ(h.max(), 999999.0);  // merge carries the exact max too
}

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace rgb::common
