#include "net/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace rgb::net {
namespace {

/// Endpoint that records everything delivered to it.
class Recorder : public Endpoint {
 public:
  void deliver(const Envelope& env) override { received.push_back(env); }
  std::vector<Envelope> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(sim_, common::RngStream{1}) {
    network_.attach(a_, &ra_);
    network_.attach(b_, &rb_);
  }

  void send_ab(MessageKind kind = 0) {
    network_.send(Envelope{a_, b_, kind, 64, std::string{"hi"}});
  }

  sim::Simulator sim_;
  Network network_;
  NodeId a_{1}, b_{2};
  Recorder ra_, rb_;
};

TEST_F(NetworkTest, DeliversWithDefaultLatency) {
  send_ab();
  EXPECT_TRUE(rb_.received.empty());  // not before the latency elapses
  sim_.run();
  ASSERT_EQ(rb_.received.size(), 1u);
  EXPECT_EQ(sim_.now(), sim::msec(1));  // default link = fixed 1ms
  EXPECT_EQ(rb_.received[0].src, a_);
  EXPECT_EQ(rb_.received[0].payload.get<std::string>(), "hi");
}

TEST_F(NetworkTest, MetersSentAndDelivered) {
  send_ab();
  send_ab();
  sim_.run();
  EXPECT_EQ(network_.metrics().sent, 2u);
  EXPECT_EQ(network_.metrics().delivered, 2u);
  EXPECT_EQ(network_.metrics().bytes_sent, 128u);
}

TEST_F(NetworkTest, MetersPerKind) {
  send_ab(7);
  send_ab(7);
  send_ab(9);
  sim_.run();
  EXPECT_EQ(network_.metrics().sent_per_kind.at(7), 2u);
  EXPECT_EQ(network_.metrics().sent_per_kind.at(9), 1u);
}

TEST_F(NetworkTest, CrashedDestinationDropsInFlight) {
  send_ab();
  network_.crash(b_);
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(network_.metrics().dropped_crash, 1u);
}

TEST_F(NetworkTest, CrashedSourceSendsNothing) {
  network_.crash(a_);
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  // The attempt never entered the network: not in `sent`, metered under
  // the source-crash bucket, not the in-network crash-drop one.
  EXPECT_EQ(network_.metrics().sent, 0u);
  EXPECT_EQ(network_.metrics().dropped_src_crash, 1u);
  EXPECT_EQ(network_.metrics().dropped_crash, 0u);
}

TEST_F(NetworkTest, RecoverRestoresDelivery) {
  network_.crash(b_);
  network_.recover(b_);
  send_ab();
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
  EXPECT_FALSE(network_.is_crashed(b_));
}

TEST_F(NetworkTest, PartitionBlocksCrossTraffic) {
  network_.set_partition(a_, 1);
  network_.set_partition(b_, 2);
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(network_.metrics().dropped_partition, 1u);
}

TEST_F(NetworkTest, SamePartitionDelivers) {
  network_.set_partition(a_, 3);
  network_.set_partition(b_, 3);
  send_ab();
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
}

TEST_F(NetworkTest, ClearPartitionsHeals) {
  network_.set_partition(a_, 1);
  network_.set_partition(b_, 2);
  network_.clear_partitions();
  send_ab();
  sim_.run();
  EXPECT_EQ(rb_.received.size(), 1u);
}

TEST_F(NetworkTest, PartitionFormedMidFlightDropsInFlight) {
  send_ab();
  // The partition forms while the message is in the air: links are cut, so
  // the delivery-time re-check must drop it.
  network_.set_partition(b_, 2);
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(network_.metrics().dropped_partition, 1u);
  EXPECT_EQ(network_.metrics().delivered, 0u);
}

// Regression (drop-accounting audit): a message whose destination is both
// crashed AND partitioned away must land in exactly one drop bucket.
TEST_F(NetworkTest, CrashPlusPartitionCountsExactlyOnce) {
  send_ab();
  network_.crash(b_);
  network_.set_partition(b_, 2);
  sim_.run();
  const auto& m = network_.metrics();
  EXPECT_EQ(m.dropped_crash + m.dropped_partition, 1u);
  EXPECT_EQ(m.dropped_crash, 1u);  // crash takes precedence, deterministic
  EXPECT_EQ(m.sent, m.delivered + m.dropped_loss + m.dropped_partition +
                        m.dropped_crash + m.dropped_unattached);
}

// Regression: the conservation identity holds across every drop cause at
// once (loss link + crashes + partitions + an unattached destination).
TEST_F(NetworkTest, ConservationHoldsAcrossMixedDropCauses) {
  network_.set_link(a_, b_, LinkConfig{LatencyModel::fixed(sim::msec(1)), 0.5});
  for (int i = 0; i < 200; ++i) send_ab();
  network_.send(Envelope{a_, NodeId{99}, 0, 64, 0});  // unattached
  sim_.run();
  // Lossless from here so the crash/partition messages reach their checks.
  network_.set_link(a_, b_, LinkConfig{LatencyModel::fixed(sim::msec(1)), 0.0});
  network_.crash(b_);
  send_ab();              // in-flight crash drop
  network_.crash(a_);
  send_ab();              // source-crash attempt: excluded from `sent`
  network_.recover(a_);
  network_.set_partition(a_, 1);
  send_ab();              // partition drop (send-time)
  sim_.run();

  const auto& m = network_.metrics();
  EXPECT_EQ(m.dropped_src_crash, 1u);
  EXPECT_GE(m.dropped_crash, 1u);
  EXPECT_GE(m.dropped_partition, 1u);
  EXPECT_EQ(m.dropped_unattached, 1u);
  EXPECT_EQ(m.sent, m.delivered + m.dropped_loss + m.dropped_partition +
                        m.dropped_crash + m.dropped_unattached);
}

TEST_F(NetworkTest, DefaultDropProbabilityAdjustsAndRestores) {
  network_.set_default_drop_probability(1.0);
  send_ab();
  sim_.run();
  EXPECT_EQ(network_.metrics().dropped_loss, 1u);
  network_.set_default_drop_probability(0.0);
  send_ab();
  sim_.run();
  EXPECT_EQ(network_.metrics().delivered, 1u);
  // Per-link overrides are unaffected by the default-link adjustment.
  network_.set_link(a_, b_, LinkConfig{LatencyModel::fixed(sim::msec(1)), 0.0});
  network_.set_default_drop_probability(1.0);
  send_ab();
  sim_.run();
  EXPECT_EQ(network_.metrics().delivered, 2u);
}

TEST_F(NetworkTest, UnattachedDestinationCounted) {
  network_.send(Envelope{a_, NodeId{99}, 0, 64, 0});
  sim_.run();
  EXPECT_EQ(network_.metrics().dropped_unattached, 1u);
}

TEST_F(NetworkTest, DetachStopsDelivery) {
  network_.detach(b_);
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_FALSE(network_.is_attached(b_));
}

TEST_F(NetworkTest, PerLinkOverrideAppliesSymmetrically) {
  network_.set_link(a_, b_, LinkConfig{LatencyModel::fixed(sim::msec(50)), 0.0});
  send_ab();
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::msec(50));
  // Reverse direction uses the same override.
  network_.send(Envelope{b_, a_, 0, 64, 0});
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::msec(100));
}

TEST_F(NetworkTest, LossDropsApproximatelyAtConfiguredRate) {
  network_.set_link(a_, b_, LinkConfig{LatencyModel::fixed(1), 0.3});
  constexpr int kSends = 5000;
  for (int i = 0; i < kSends; ++i) send_ab();
  sim_.run();
  const double loss_rate =
      static_cast<double>(network_.metrics().dropped_loss) / kSends;
  EXPECT_NEAR(loss_rate, 0.3, 0.03);
  EXPECT_EQ(network_.metrics().delivered + network_.metrics().dropped_loss,
            static_cast<std::uint64_t>(kSends));
}

TEST_F(NetworkTest, TapSeesVerdicts) {
  int delivered = 0, dropped = 0;
  network_.set_tap([&](const Envelope&, bool ok) {
    ok ? ++delivered : ++dropped;
  });
  send_ab();
  sim_.run();  // deliver before the crash: in-flight messages would drop
  network_.crash(b_);
  send_ab();
  sim_.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(dropped, 1);
}

TEST_F(NetworkTest, DeliveryLatencyAccumulated) {
  send_ab();
  sim_.run();
  EXPECT_EQ(network_.metrics().delivery_latency_us.count(), 1u);
  EXPECT_DOUBLE_EQ(network_.metrics().delivery_latency_us.mean(),
                   static_cast<double>(sim::msec(1)));
}

TEST_F(NetworkTest, ResetMetricsClears) {
  send_ab();
  sim_.run();
  network_.reset_metrics();
  EXPECT_EQ(network_.metrics().sent, 0u);
  EXPECT_TRUE(network_.metrics().sent_per_kind.empty());
}

TEST_F(NetworkTest, LinkKeySeparatesHighBitNodeIds) {
  // Regression: the packed 64-bit key ORed the ids together unmasked
  // ((min << 32) | max), so {1, 2} and {1, 2^32 + 2} collided onto the
  // same link record — an override for one silently governed the other.
  const NodeId high{(1ULL << 32) + 2};
  Recorder rhigh;
  network_.attach(high, &rhigh);
  network_.set_link(a_, b_,
                    LinkConfig{LatencyModel::fixed(sim::msec(50)), 0.0});
  network_.send(Envelope{a_, high, 0, 64, 0});
  sim_.run();
  ASSERT_EQ(rhigh.received.size(), 1u);
  EXPECT_EQ(sim_.now(), sim::msec(1));  // default link, not the {1,2} one
  // Both links hold distinct configs side by side.
  network_.set_link(a_, high,
                    LinkConfig{LatencyModel::fixed(sim::msec(7)), 0.0});
  send_ab();
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::msec(51));
  network_.send(Envelope{a_, high, 0, 64, 0});
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::msec(58));
  EXPECT_EQ(rhigh.received.size(), 2u);
}

TEST_F(NetworkTest, NoNegativeDeliveryLatencyAcrossCappedRuns) {
  // Companion to the run_until cap bugfix: driving the simulation in
  // event-capped chunks (the bench/oracle pattern) must never observe a
  // delivery earlier than its send — every latency sample stays the exact
  // link delay.
  network_.set_link(a_, b_,
                    LinkConfig{LatencyModel::fixed(sim::msec(2)), 0.0});
  for (int burst = 0; burst < 5; ++burst) {
    const sim::Time deadline = sim::sec(static_cast<sim::Time>(burst + 1));
    send_ab();
    send_ab();
    // A deadline far past the pending deliveries with a tiny event budget:
    // the buggy clock jumped here, making later sends look "in the past".
    sim_.run_until(deadline, 1);
    send_ab();
    sim_.run_until(deadline);
  }
  const auto& lat = network_.metrics().delivery_latency_us;
  EXPECT_EQ(lat.count(), 15u);
  EXPECT_DOUBLE_EQ(lat.min(), static_cast<double>(sim::msec(2)));
  EXPECT_DOUBLE_EQ(lat.max(), static_cast<double>(sim::msec(2)));
}

TEST_F(NetworkTest, AttachReplacesEndpoint) {
  Recorder rb2;
  network_.attach(b_, &rb2);
  send_ab();
  sim_.run();
  EXPECT_TRUE(rb_.received.empty());
  EXPECT_EQ(rb2.received.size(), 1u);
}

}  // namespace
}  // namespace rgb::net
