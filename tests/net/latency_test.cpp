#include "net/latency.hpp"

#include <gtest/gtest.h>

namespace rgb::net {
namespace {

TEST(Latency, FixedAlwaysSame) {
  common::RngStream rng{1};
  const auto model = LatencyModel::fixed(sim::msec(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(rng), sim::msec(3));
  }
  EXPECT_EQ(model.min_delay(), sim::msec(3));
}

TEST(Latency, UniformStaysInRange) {
  common::RngStream rng{2};
  const auto model = LatencyModel::uniform(sim::msec(1), sim::msec(5));
  for (int i = 0; i < 1000; ++i) {
    const auto d = model.sample(rng);
    EXPECT_GE(d, sim::msec(1));
    EXPECT_LE(d, sim::msec(5));
  }
}

TEST(Latency, UniformDegenerateRange) {
  common::RngStream rng{3};
  const auto model = LatencyModel::uniform(sim::msec(2), sim::msec(2));
  EXPECT_EQ(model.sample(rng), sim::msec(2));
}

TEST(Latency, UniformCoversEndpoints) {
  common::RngStream rng{4};
  const auto model = LatencyModel::uniform(0, 3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto d = model.sample(rng);
    saw_lo |= (d == 0);
    saw_hi |= (d == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Latency, ShiftedExponentialRespectsMinimum) {
  common::RngStream rng{5};
  const auto model =
      LatencyModel::shifted_exponential(sim::msec(10), sim::msec(5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.sample(rng), sim::msec(10));
  }
  EXPECT_EQ(model.min_delay(), sim::msec(10));
}

TEST(Latency, ShiftedExponentialMean) {
  common::RngStream rng{6};
  const auto model =
      LatencyModel::shifted_exponential(sim::msec(10), sim::msec(20));
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(model.sample(rng));
  }
  const double mean_ms = sum / kTrials / sim::kMillisecond;
  EXPECT_NEAR(mean_ms, 30.0, 1.0);
}

TEST(TimeHelpers, UnitConversions) {
  EXPECT_EQ(sim::usec(1500), 1500u);
  EXPECT_EQ(sim::msec(2), 2000u);
  EXPECT_EQ(sim::sec(1), 1'000'000u);
  EXPECT_DOUBLE_EQ(sim::to_ms(sim::msec(5)), 5.0);
  EXPECT_EQ(sim::from_ms(2.5), 2500u);
}

}  // namespace
}  // namespace rgb::net
