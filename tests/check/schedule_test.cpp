// Fault-schedule format and generator tests: parse/serialize round-trips,
// validation errors, and determinism of seeded generation.
#include "check/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rgb::check {
namespace {

TEST(ScheduleFormat, SerializeParseRoundTrips) {
  FaultSchedule schedule;
  schedule.id = "demo";
  schedule.events = {
      {sim::msec(500), FaultAction::kCrash, 7, 0, 0.0, 0},
      {sim::msec(1200), FaultAction::kRecover, 7, 0, 0.0, 0},
      {sim::sec(2), FaultAction::kPartition, 3, 1, 0.0, 0},
      {sim::sec(4), FaultAction::kHeal, 0, 0, 0.0, 0},
      {sim::sec(5), FaultAction::kDropBurst, 0, 0, 0.25, sim::msec(800)},
      {sim::sec(6), FaultAction::kHandoff, 4, 2, 0.0, 0},
      {sim::sec(7), FaultAction::kJoin, 9, 1, 0.0, 0},
      {sim::sec(8), FaultAction::kLeave, 4, 0, 0.0, 0},
      {sim::usec(9000001), FaultAction::kFail, 9, 0, 0.0, 0},
      {sim::sec(10), FaultAction::kChurn, 0, 0, 0.01, sim::sec(2)},
  };
  const std::string text = schedule.serialize();
  const FaultSchedule parsed = parse_schedule(text);
  EXPECT_EQ(parsed, schedule);
  // And the round-trip is a fixpoint at the text level too.
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(ScheduleFormat, ParsesCommentsBlanksAndUnits) {
  const FaultSchedule parsed = parse_schedule(
      "# full-line comment\n"
      "schedule demo\n"
      "\n"
      "at 250us crash ne 0   # trailing comment\n"
      "at 3ms recover ne 0\n"
      "at 1s heal\n");
  ASSERT_EQ(parsed.events.size(), 3u);
  EXPECT_EQ(parsed.id, "demo");
  EXPECT_EQ(parsed.events[0].at, sim::usec(250));
  EXPECT_EQ(parsed.events[1].at, sim::msec(3));
  EXPECT_EQ(parsed.events[2].at, sim::sec(1));
}

TEST(ScheduleFormat, NormalizeSortsByTime) {
  FaultSchedule schedule;
  schedule.events = {
      {sim::sec(5), FaultAction::kHeal, 0, 0, 0.0, 0},
      {sim::sec(1), FaultAction::kCrash, 1, 0, 0.0, 0},
  };
  schedule.normalize();
  EXPECT_EQ(schedule.events[0].at, sim::sec(1));
}

TEST(ScheduleFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_schedule("at nonsense crash ne 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_schedule("at 1s explode ne 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("at 1s crash mh 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("at 1s crash ne\n"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("at 1s dropburst 1.5 100ms\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_schedule("at 1s churn 2.0 1s\n"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("crash ne 1\n"), std::invalid_argument);
}

TEST(ScheduleGenerator, IsAPureFunctionOfConfigAndSeed) {
  ScheduleGenConfig config;
  config.events = 12;
  config.ne_count = 12;
  config.ap_count = 9;
  config.max_guid = 8;
  config.partitions = true;
  const FaultSchedule a = random_schedule(config, 42);
  const FaultSchedule b = random_schedule(config, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.serialize(), b.serialize());

  const FaultSchedule c = random_schedule(config, 43);
  EXPECT_NE(a, c);  // different seed, different schedule
}

TEST(ScheduleGenerator, RespectsFaultClassGates) {
  ScheduleGenConfig config;
  config.events = 30;
  config.ne_count = 12;
  config.ap_count = 9;
  config.max_guid = 8;
  config.crashes = false;
  config.partitions = false;
  config.drop_bursts = false;  // only handoffs allowed
  const FaultSchedule schedule = random_schedule(config, 7);
  ASSERT_FALSE(schedule.events.empty());
  for (const FaultEvent& event : schedule.events) {
    EXPECT_EQ(event.action, FaultAction::kHandoff) << event.to_line();
  }
}

TEST(ScheduleGenerator, PairsEveryCrashWithARecover) {
  ScheduleGenConfig config;
  config.events = 20;
  config.ne_count = 12;
  config.ap_count = 9;
  config.max_guid = 8;
  config.drop_bursts = false;
  config.handoffs = false;
  config.recover_all = true;
  const FaultSchedule schedule = random_schedule(config, 11);
  int crashes = 0, recovers = 0;
  for (const FaultEvent& event : schedule.events) {
    if (event.action == FaultAction::kCrash) ++crashes;
    if (event.action == FaultAction::kRecover) ++recovers;
  }
  EXPECT_GT(crashes, 0);
  EXPECT_EQ(crashes, recovers);
}

TEST(ScheduleGenerator, HealsAfterEveryPartitionRun) {
  ScheduleGenConfig config;
  config.events = 15;
  config.ne_count = 12;
  config.ap_count = 9;
  config.max_guid = 8;
  config.crashes = false;
  config.drop_bursts = false;
  config.handoffs = false;
  config.partitions = true;
  const FaultSchedule schedule = random_schedule(config, 3);
  bool saw_partition = false;
  for (const FaultEvent& event : schedule.events) {
    saw_partition |= event.action == FaultAction::kPartition;
  }
  ASSERT_TRUE(saw_partition);
  EXPECT_EQ(schedule.events.back().action, FaultAction::kHeal);
}

}  // namespace
}  // namespace rgb::check
