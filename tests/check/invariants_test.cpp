// Oracle unit tests: every invariant is exercised with a hand-built
// violating history and must FIRE (no vacuous invariants), plus a matching
// clean history where it must stay silent.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "check/model.hpp"
#include "net/network.hpp"
#include "rgb/rgb.hpp"
#include "sim/simulator.hpp"

namespace rgb::check {
namespace {

using proto::MemberRecord;
using proto::MemberStatus;

MemberRecord rec(std::uint64_t guid, std::uint64_t ap) {
  return MemberRecord{Guid{guid}, NodeId{ap}, MemberStatus::kOperational};
}

NodeView node(std::uint64_t id, std::vector<ViewEntry> entries,
              bool alive = true, bool global = true) {
  NodeView view;
  view.id = NodeId{id};
  view.alive = alive;
  view.holds_global = global;
  view.entries = std::move(entries);
  return view;
}

/// Names of the violations in `report`, in canonical order.
std::vector<std::string> fired(const CheckReport& report) {
  std::vector<std::string> out;
  for (const Violation& v : report.violations()) out.push_back(v.invariant);
  return out;
}

// --- convergence ------------------------------------------------------------

TEST(ConvergenceOracle, FiresWhenNodeViewMissesAMember) {
  StaticModel model;
  model.truth = {rec(1, 100), rec(2, 101)};
  model.aggregate = model.truth;
  model.views = {node(10, {{rec(1, 100), 1}, {rec(2, 101), 2}}),
                 node(11, {{rec(1, 100), 1}})};  // missing guid 2

  OracleSuite suite{exp::kCheckConvergence};
  suite.at_quiescence(model, sim::sec(1));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"convergence"});
  EXPECT_NE(suite.report().violations()[0].detail.find("node 11"),
            std::string::npos);
}

TEST(ConvergenceOracle, FiresWhenProtocolQueryAnswerIsWrong) {
  StaticModel model;
  model.truth = {rec(1, 100)};
  model.aggregate = {};  // the query mechanism lost the member
  model.views = {node(10, {{rec(1, 100), 1}})};

  OracleSuite suite{exp::kCheckConvergence};
  suite.at_quiescence(model, sim::sec(1));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"convergence"});
}

TEST(ConvergenceOracle, SilentOnExactMatch) {
  StaticModel model;
  model.truth = {rec(1, 100), rec(2, 101)};
  model.aggregate = model.truth;
  model.views = {node(10, {{rec(1, 100), 1}, {rec(2, 101), 2}})};

  OracleSuite suite{exp::kCheckConvergence};
  suite.at_quiescence(model, sim::sec(1));
  EXPECT_TRUE(suite.passed());
}

TEST(ConvergenceOracle, IgnoresCrashedAndPartialViewNodesAndUncertain) {
  StaticModel model;
  model.truth = {rec(1, 100)};
  model.aggregate = {rec(1, 100), rec(9, 102)};  // 9 is uncertain: excused
  model.unsure = {Guid{9}};
  model.views = {
      node(10, {{rec(1, 100), 1}}),
      node(11, {}, /*alive=*/false),              // crashed: frozen view ok
      node(12, {}, /*alive=*/true, /*global=*/false),  // partial view ok
      node(13, {{rec(1, 100), 1}, {rec(9, 102), 3}}),  // stale uncertain ok
  };

  OracleSuite suite{exp::kCheckConvergence};
  suite.at_quiescence(model, sim::sec(1));
  EXPECT_TRUE(suite.passed()) << suite.report().format();
}

// --- agreement --------------------------------------------------------------

TEST(AgreementOracle, FiresWhenGlobalViewNodesDiverge) {
  StaticModel model;
  model.truth = {rec(1, 100)};
  model.aggregate = model.truth;
  model.views = {node(10, {{rec(1, 100), 1}}),
                 node(11, {{rec(1, 105), 4}})};  // different AP for guid 1

  OracleSuite suite{exp::kCheckAgreement};
  suite.at_quiescence(model, sim::sec(2));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"agreement"});
}

TEST(AgreementOracle, SilentWhenViewsMatchEvenIfTruthDiffers) {
  // Agreement is ground-truth-free: nodes agreeing on a wrong view is a
  // convergence violation, not an agreement one.
  StaticModel model;
  model.truth = {rec(1, 100), rec(2, 101)};
  model.aggregate = model.truth;
  model.views = {node(10, {{rec(1, 100), 1}}), node(11, {{rec(1, 100), 1}})};

  OracleSuite suite{exp::kCheckAgreement};
  suite.at_quiescence(model, sim::sec(2));
  EXPECT_TRUE(suite.passed());
}

// --- zombie -----------------------------------------------------------------

TEST(ZombieOracle, FiresWhenDeadMemberShownOperational) {
  StaticModel model;
  model.truth = {rec(1, 100)};  // guid 7 is dead
  model.aggregate = model.truth;
  model.views = {node(10, {{rec(1, 100), 1}, {rec(7, 103), 5}})};

  OracleSuite suite{exp::kCheckZombie};
  suite.at_quiescence(model, sim::sec(3));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"zombie"});
  EXPECT_NE(suite.report().violations()[0].detail.find("dead member 7"),
            std::string::npos);
}

TEST(ZombieOracle, ExemptsUncertainAndCrashedNodes) {
  StaticModel model;
  model.truth = {};
  model.unsure = {Guid{7}};
  model.views = {node(10, {{rec(7, 103), 5}}),             // uncertain guid
                 node(11, {{rec(8, 104), 6}}, false)};     // crashed holder

  OracleSuite suite{exp::kCheckZombie};
  suite.at_quiescence(model, sim::sec(3));
  EXPECT_TRUE(suite.passed()) << suite.report().format();
}

// --- monotone ---------------------------------------------------------------

TEST(MonotoneOracle, FiresWhenASequenceRegresses) {
  StaticModel before;
  before.views = {node(10, {{rec(1, 100), 5}})};
  StaticModel after;
  after.views = {node(10, {{rec(1, 101), 3}})};  // seq went 5 -> 3

  OracleSuite suite{exp::kCheckMonotone};
  suite.sample(before, sim::msec(100));
  suite.sample(after, sim::msec(200));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"monotone"});
  EXPECT_EQ(suite.report().violations()[0].at, sim::msec(200));
}

TEST(MonotoneOracle, SilentOnAdvancingOrEqualSequences) {
  StaticModel first;
  first.views = {node(10, {{rec(1, 100), 5}})};
  StaticModel second;
  second.views = {node(10, {{rec(1, 101), 9}})};

  OracleSuite suite{exp::kCheckMonotone};
  suite.sample(first, sim::msec(100));
  suite.sample(second, sim::msec(200));
  suite.at_quiescence(second, sim::msec(300));  // re-observing 9 is fine
  EXPECT_TRUE(suite.passed());
}

TEST(MonotoneOracle, TracksNodesIndependently) {
  // Node 11 catching up to seq 4 after node 10 reached 9 is NOT a
  // regression: monotonicity is per (node, member) history.
  StaticModel m1;
  m1.views = {node(10, {{rec(1, 100), 9}})};
  StaticModel m2;
  m2.views = {node(10, {{rec(1, 100), 9}}), node(11, {{rec(1, 100), 4}})};

  OracleSuite suite{exp::kCheckMonotone};
  suite.sample(m1, sim::msec(100));
  suite.sample(m2, sim::msec(200));
  EXPECT_TRUE(suite.passed());
}

// --- metering ---------------------------------------------------------------

TEST(MeteringOracle, FiresOnDoubleCountedDrop) {
  StaticModel model;
  model.net.sent = 10;
  model.net.delivered = 8;
  model.net.dropped_partition = 2;
  model.net.dropped_crash = 1;  // the same message counted twice

  OracleSuite suite{exp::kCheckMetering};
  suite.at_quiescence(model, sim::sec(4));
  ASSERT_EQ(fired(suite.report()), std::vector<std::string>{"metering"});
}

TEST(MeteringOracle, AllowsInFlightMessages) {
  StaticModel model;
  model.net.sent = 10;
  model.net.delivered = 7;
  model.net.dropped_loss = 1;  // 2 still in flight

  OracleSuite suite{exp::kCheckMetering};
  suite.at_quiescence(model, sim::sec(4));
  EXPECT_TRUE(suite.passed());
}

// --- hierarchy --------------------------------------------------------------

TEST(HierarchyOracle, FiresOnLeaderDisagreement) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 3}};
  const auto& ring = sys.rings(0).front();
  // Sabotage: one node is told a different leader than its ring siblings.
  sys.entity(ring[2])->configure_ring({ring[0], ring[1], ring[2]}, ring[2]);

  RgbModel model{sys};
  OracleSuite suite{exp::kCheckHierarchy};
  suite.at_quiescence(model, sim::sec(5));
  ASSERT_FALSE(suite.passed());
  EXPECT_EQ(suite.report().violations()[0].invariant, "hierarchy");
}

TEST(HierarchyOracle, FiresOnBrokenCycle) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 4}};
  const auto& ring = sys.rings(0).front();
  // Sabotage one node's ring wiring: its next-pointer skips a member, so
  // following the pointers no longer yields a 4-cycle.
  sys.entity(ring[1])->configure_ring({ring[1], ring[3], ring[0], ring[2]},
                                      ring[0]);

  RgbModel model{sys};
  OracleSuite suite{exp::kCheckHierarchy};
  suite.at_quiescence(model, sim::sec(5));
  ASSERT_FALSE(suite.passed());
  EXPECT_EQ(suite.report().violations()[0].invariant, "hierarchy");
}

TEST(HierarchyOracle, SilentOnFreshHierarchy) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{2, 3}};
  RgbModel model{sys};
  OracleSuite suite{exp::kCheckHierarchy};
  suite.at_quiescence(model, sim::sec(5));
  EXPECT_TRUE(suite.passed()) << suite.report().format();
}

// --- mask & report ----------------------------------------------------------

TEST(OracleSuite, MaskDisablesOracles) {
  StaticModel model;
  model.truth = {rec(1, 100)};
  model.aggregate = {};                  // convergence violation...
  model.views = {node(10, {})};

  OracleSuite suite{exp::kCheckZombie};  // ...but only zombie is armed
  suite.at_quiescence(model, sim::sec(1));
  EXPECT_TRUE(suite.passed());
}

TEST(CheckReport, FormatsSortedAndDeterministic) {
  CheckReport report;
  report.add(Violation{"b-inv", sim::msec(2), "second", 0, 1, 1});
  report.add(Violation{"a-inv", sim::msec(1), "first", 0, 1, 0});
  report.add(Violation{"c-inv", sim::msec(3), "other trial", 0, 0, 0});
  const std::string text = report.format();
  EXPECT_LT(text.find("other trial"), text.find("first"));
  EXPECT_LT(text.find("first"), text.find("second"));

  CheckReport empty;
  EXPECT_EQ(empty.format(), "OK\n");
}

}  // namespace
}  // namespace rgb::check
