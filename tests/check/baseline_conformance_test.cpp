// Baseline conformance matrix: the same oracle suite that RGB passes is
// run against the tree / flat-ring / gossip baselines, both to document
// which guarantees each design actually provides and to prove the oracles
// detect real (not just hand-built) violations end-to-end.
//
// Documented matrix (ROADMAP.md):
//   protocol | fault-free | loss bursts | crash/recover
//   rgb      |    pass    |    pass     |     pass
//   tree     |    pass    |    FAIL     |     FAIL   (flood has no retx,
//            |            |             |  no failure detection/repair)
//   flatring |    pass    |    FAIL     |     FAIL   (token loss stalls
//            |            |             |             the single ring)
//   gossip   |    pass    |    pass     |     FAIL   (declared-failed
//            |            |             |   peers never rejoin the mesh)
//
// The FAIL cells assert that violations FIRE — a suite that stopped
// detecting them would silently weaken the RGB claims too.
#include <gtest/gtest.h>

#include "check/check.hpp"

namespace rgb::check {
namespace {

AdversarialConfig config_for(Protocol protocol, bool bursts, bool crashes) {
  AdversarialConfig cfg;
  cfg.protocol = protocol;
  cfg.tiers = 2;
  cfg.ring_size = 3;
  cfg.initial_members = 8;
  cfg.settle = sim::sec(15);
  cfg.gen.events = 10;
  cfg.gen.window = sim::sec(8);
  cfg.gen.crashes = crashes;
  cfg.gen.drop_bursts = bursts;
  cfg.gen.handoffs = true;
  cfg.gen.partitions = false;
  return cfg;
}

/// Violating seeds out of the first `seeds` searched.
int violating_seeds(const AdversarialConfig& cfg, std::uint64_t seeds) {
  int violating = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    if (!run_random(cfg, seed).passed()) ++violating;
  }
  return violating;
}

// --- fault-free column: everyone converges under pure handoff churn --------

TEST(BaselineConformance, AllProtocolsPassFaultFreeChurn) {
  for (const Protocol protocol :
       {Protocol::kRgb, Protocol::kTree, Protocol::kFlatRing,
        Protocol::kGossip}) {
    const auto cfg = config_for(protocol, false, false);
    EXPECT_EQ(violating_seeds(cfg, 3), 0) << to_string(protocol);
  }
}

// --- rgb row: the paper's fault model holds -------------------------------

TEST(BaselineConformance, RgbSurvivesLossBursts) {
  EXPECT_EQ(violating_seeds(config_for(Protocol::kRgb, true, false), 3), 0);
}

TEST(BaselineConformance, RgbSurvivesCrashRecover) {
  EXPECT_EQ(violating_seeds(config_for(Protocol::kRgb, false, true), 3), 0);
}

// --- documented failures: the oracles must FIRE on the weak designs --------

TEST(BaselineConformance, TreeFailsUnderLossBursts) {
  // Flooded proposals have no retransmission: a burst permanently loses
  // updates and the tree never reconverges.
  EXPECT_GT(violating_seeds(config_for(Protocol::kTree, true, false), 5), 0);
}

TEST(BaselineConformance, TreeFailsUnderCrashes) {
  // No failure detection: a crashed server cuts its subtree off and
  // stranded members stay operational in every view (zombies).
  EXPECT_GT(violating_seeds(config_for(Protocol::kTree, false, true), 5), 0);
}

TEST(BaselineConformance, FlatRingFailsUnderLossBursts) {
  // One token on one big ring: losing it (or its wake) stalls the whole
  // membership service.
  EXPECT_GT(violating_seeds(config_for(Protocol::kFlatRing, true, false), 5),
            0);
}

TEST(BaselineConformance, GossipSurvivesLossBursts) {
  // Infection-style dissemination is redundant by design: bounded loss
  // only delays convergence.
  EXPECT_EQ(violating_seeds(config_for(Protocol::kGossip, true, false), 3),
            0);
}

TEST(BaselineConformance, GossipFailsUnderCrashRecover) {
  // SWIM-style suspicion declares the crashed peer failed, but there is no
  // rejoin path: the recovered node stays excluded and its view diverges.
  EXPECT_GT(violating_seeds(config_for(Protocol::kGossip, false, true), 5),
            0);
}

}  // namespace
}  // namespace rgb::check
