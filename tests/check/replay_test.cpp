// Schedule-replay determinism: the same (config, schedule, seed) must
// produce a byte-identical violation report on every replay, and running
// schedule-driven trials through the experiment harness must aggregate —
// violation report included — byte-identically on 1 and 8 worker threads.
#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hpp"
#include "exp/exp.hpp"
#include "rgb/rgb.hpp"

namespace rgb::check {
namespace {

AdversarialConfig small_config() {
  AdversarialConfig cfg;
  cfg.protocol = Protocol::kRgb;
  cfg.tiers = 2;
  cfg.ring_size = 3;
  cfg.initial_members = 8;
  cfg.settle = sim::sec(10);
  cfg.gen.events = 8;
  cfg.gen.window = sim::sec(5);
  return cfg;
}

/// The partitions+handoffs profile that violated from PR 2 through PR 4
/// (~25/60 seeds; seed 2 was the pinned deterministic repro). The
/// post-heal reconciliation round — claim-epoch ordering plus the
/// kReconcile re-anchoring exchange — closed the gap: the same profile now
/// asserts *convergence*, and the 60-seed sweep is a CI gate
/// (ci/check.sh).
AdversarialConfig partition_profile() {
  AdversarialConfig cfg = small_config();
  cfg.gen.crashes = false;
  cfg.gen.drop_bursts = false;
  cfg.gen.handoffs = true;
  cfg.gen.partitions = true;
  cfg.settle = sim::sec(20);
  cfg.gen.window = sim::sec(10);
  cfg.gen.events = 10;
  return cfg;
}

/// Seed 2 pinned the violating repro of partition_profile() from PR 3 to
/// PR 4; it must converge deterministically now.
constexpr std::uint64_t kFormerViolatingSeed = 2;

/// RGB is not held to convergence across an *unhealed* partition: the
/// generator always heals before quiescence and minimize never strips a
/// heal, so a split left open through settle is the stable violating
/// fixture the determinism tests need — identical non-empty reports, not
/// just identical "OK". The handoffs give the minimizer events it can
/// actually drop.
FaultSchedule unhealed_partition_schedule() {
  return parse_schedule(
      "schedule unhealed-partition\n"
      "at 1s partition ne 0 1\n"
      "at 1500ms handoff mh 1 ap 4\n"
      "at 2s handoff mh 2 ap 1\n"
      "at 3s join mh 9 ap 2\n");
}

TEST(ScheduleReplay, SameSeedAndScheduleGiveIdenticalResults) {
  const AdversarialConfig cfg = small_config();
  const FaultSchedule schedule = random_schedule_for(cfg, 7);
  const CheckRunResult a = run_schedule(cfg, schedule, 7);
  const CheckRunResult b = run_schedule(cfg, schedule, 7);
  EXPECT_EQ(a.report.format(), b.report.format());
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

TEST(ScheduleReplay, FormerlyViolatingPartitionSeedNowConverges) {
  // The acceptance pin of the reconciliation round: the profile and seed
  // that deterministically violated through PR 4 converge now, and the
  // converging replay is itself deterministic.
  const AdversarialConfig cfg = partition_profile();
  const FaultSchedule schedule =
      random_schedule_for(cfg, kFormerViolatingSeed);
  const CheckRunResult a = run_schedule(cfg, schedule, kFormerViolatingSeed);
  EXPECT_TRUE(a.passed()) << a.report.format();
  const CheckRunResult b = run_schedule(cfg, schedule, kFormerViolatingSeed);
  EXPECT_EQ(a.report.format(), b.report.format());
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

TEST(ScheduleReplay, ViolationReportReplaysByteIdentically) {
  const AdversarialConfig cfg = partition_profile();
  const FaultSchedule schedule = unhealed_partition_schedule();
  const CheckRunResult a = run_schedule(cfg, schedule, 3);
  ASSERT_FALSE(a.passed())
      << "an unhealed partition must violate convergence";
  const CheckRunResult b = run_schedule(cfg, schedule, 3);
  EXPECT_EQ(a.report.format(), b.report.format());
  EXPECT_GT(a.report.size(), 0u);
}

TEST(ScheduleReplay, MinimizedScheduleStillViolatesAndIsDeterministic) {
  const AdversarialConfig cfg = partition_profile();
  const FaultSchedule schedule = unhealed_partition_schedule();
  std::uint64_t runs_a = 0, runs_b = 0;
  const FaultSchedule min_a = minimize(cfg, schedule, 3, &runs_a);
  const FaultSchedule min_b = minimize(cfg, schedule, 3, &runs_b);
  EXPECT_EQ(min_a, min_b);
  EXPECT_EQ(runs_a, runs_b);
  EXPECT_LE(min_a.events.size(), schedule.events.size());
  // The minimized schedule reproduces the violation...
  EXPECT_FALSE(run_schedule(cfg, min_a, 3).passed());
  // ...and round-trips through the text format into the same repro.
  const FaultSchedule reparsed = parse_schedule(min_a.serialize());
  EXPECT_FALSE(run_schedule(cfg, reparsed, 3).passed());
}

/// The formerly-violating seeds of the full fuzz profile (crashes + bursts
/// + handoffs + partitions), re-minimized by rgb_fuzz into their smallest
/// still-violating schedules at the time, pinned here as *converging*
/// repros. Two distinct failure classes are covered:
///  * seeds 34/33-style — a cross-partition splice emits a false
///    Member-Failure for a member that concurrently handed off inside the
///    other fragment; after heal the stale host re-anchored it with a
///    fresh seq and the fragment's handoff op lost forever (fixed by
///    claim-epoch ordering + the reconcile round);
///  * seeds 5/30/58-style — a post-heal orphan believes a leader that
///    repaired it out of its ring long ago; merge offers died at the
///    relay and the rosters never reconverged (fixed by the direct
///    merge-accept reply).
struct PinnedRepro {
  std::uint64_t seed;
  const char* schedule;
};

class FormerPartitionRepros : public ::testing::TestWithParam<PinnedRepro> {};

TEST_P(FormerPartitionRepros, MinimizedScheduleConverges) {
  AdversarialConfig cfg;  // the rgb_fuzz default shape (tiers 2, ring 3)
  const FaultSchedule schedule = parse_schedule(GetParam().schedule);
  const CheckRunResult result = run_schedule(cfg, schedule, GetParam().seed);
  EXPECT_TRUE(result.passed())
      << "seed " << GetParam().seed << ":\n" << result.report.format();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FormerPartitionRepros,
    ::testing::Values(
        PinnedRepro{5,
                    "schedule rand-5-min\n"
                    "at 523477us partition ne 2 2\n"
                    "at 9656026us partition ne 0 1\n"
                    "at 10100ms heal\n"},
        PinnedRepro{30,
                    "schedule rand-30-min\n"
                    "at 638521us partition ne 9 1\n"
                    "at 10100ms heal\n"},
        PinnedRepro{34,
                    "schedule rand-34-min\n"
                    "at 1118406us partition ne 9 2\n"
                    "at 9503807us handoff mh 8 ap 8\n"
                    "at 10100ms heal\n"},
        PinnedRepro{45,
                    "schedule rand-45-min\n"
                    "at 1421532us partition ne 4 1\n"
                    "at 6878857us handoff mh 2 ap 4\n"
                    "at 7344081us partition ne 6 2\n"
                    "at 10100ms heal\n"},
        PinnedRepro{58,
                    "schedule rand-58-min\n"
                    "at 496641us partition ne 0 1\n"
                    "at 9698148us partition ne 1 1\n"
                    "at 10100ms heal\n"}));

TEST(ScheduleReplay, MinimizeReturnsPassingScheduleUnchanged) {
  const AdversarialConfig cfg = small_config();
  const FaultSchedule schedule = random_schedule_for(cfg, 7);
  ASSERT_TRUE(run_schedule(cfg, schedule, 7).passed());
  EXPECT_EQ(minimize(cfg, schedule, 7), schedule);
}

/// The satellite contract: same seed+schedule ⇒ identical report at 1 and
/// 8 exp-runner threads, exercised through the real TrialRunner +
/// CheckObserver plumbing with a violating cell in the mix (mode 2) and
/// the formerly-violating partition seed now converging (mode 1).
TEST(ScheduleReplay, HarnessReportIdenticalAcrossThreadCounts) {
  exp::Scenario scenario;
  scenario.id = "replay.determinism";
  scenario.title = "schedule replay under the runner";
  scenario.paper_ref = "test";
  scenario.metrics = {"violations", "events"};
  scenario.cells.push_back(exp::ParamSet{{"mode", 0.0}});
  scenario.cells.push_back(exp::ParamSet{{"mode", 1.0}});
  scenario.cells.push_back(exp::ParamSet{{"mode", 2.0}});
  scenario.trials_per_cell = 3;
  scenario.check_mask = exp::kCheckAll;
  scenario.run = [](const exp::TrialContext& ctx) -> std::vector<double> {
    const int mode = ctx.params.get_int("mode");
    AdversarialConfig cfg = mode != 0 ? partition_profile() : small_config();
    // Shrink the profiles: this test needs determinism, not depth.
    cfg.settle = sim::sec(8);
    auto chk = exp::begin_check(ctx);
    // Mode 1 pins the formerly-violating partition seed (it converges but
    // must do so identically on every thread count); mode 2 is the
    // deliberately-violating unhealed split; mode 0 a passing random run.
    const std::uint64_t seed = mode == 1 ? kFormerViolatingSeed : ctx.seed;
    const FaultSchedule schedule = mode == 2
                                       ? unhealed_partition_schedule()
                                       : random_schedule_for(cfg, seed);
    const CheckRunResult result = run_schedule(
        cfg, schedule, seed, chk.get(), ctx.cell_index, ctx.trial_index);
    return {double(result.report.size()), double(result.events_applied)};
  };

  const auto run_with = [&](unsigned threads) {
    CheckObserver observer{scenario.check_mask};
    exp::RunnerOptions options;
    options.threads = threads;
    options.base_seed = 99;
    options.observer = &observer;
    const exp::TrialRunner runner{options};
    const exp::RunResult result = runner.run(scenario);
    std::ostringstream csv;
    exp::write_csv(result, csv);
    return std::make_pair(csv.str(), observer.report().format());
  };

  const auto [csv1, report1] = run_with(1);
  const auto [csv8, report8] = run_with(8);
  EXPECT_EQ(csv1, csv8);
  EXPECT_EQ(report1, report8);
  // The acceptance pin rides along: the formerly-violating partition seed
  // (cell 1) must actually CONVERGE on both thread counts, while the
  // deliberately-unhealed cell 2 must report violations — byte-identity
  // alone would also hold for two identically-wrong runs.
  EXPECT_EQ(report1.find("[cell 1"), std::string::npos) << report1;
  EXPECT_NE(report1.find("[cell 2"), std::string::npos) << report1;
}

TEST(ScheduleDriverTest, SkipsImpossibleMemberActions) {
  // A handoff to a crashed AP and ops on dead members must be skipped by
  // the driver — neither the service nor ground truth may record them.
  common::RngStream rng{3};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 3}};
  GroundTruth truth;
  sys.join(common::Guid{1}, sys.aps()[0]);
  truth.join(common::Guid{1}, sys.aps()[0]);

  ScheduleDriver driver{simulator, network, sys, truth,
                        Topology{sys.all_nes(), sys.aps()}};
  FaultSchedule schedule = parse_schedule(
      "at 1ms crash ne 1\n"
      "at 2ms handoff mh 1 ap 1\n"   // target just crashed: skipped
      "at 3ms leave mh 9\n"          // unknown member: skipped
      "at 4ms handoff mh 1 ap 2\n"); // valid
  driver.arm(schedule);
  simulator.run();

  EXPECT_EQ(driver.events_applied(), 2u);  // the crash + the valid handoff
  EXPECT_EQ(truth.ap_of(common::Guid{1}), sys.aps()[2]);
}

TEST(ScheduleDriverTest, ApCrashStrandsMembersIntoUncertainty) {
  common::RngStream rng{3};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 3}};
  GroundTruth truth;
  sys.join(common::Guid{1}, sys.aps()[0]);
  truth.join(common::Guid{1}, sys.aps()[0]);
  sys.join(common::Guid{2}, sys.aps()[1]);
  truth.join(common::Guid{2}, sys.aps()[1]);

  ScheduleDriver driver{simulator, network, sys, truth,
                        Topology{sys.all_nes(), sys.aps()}};
  driver.arm(parse_schedule("at 1ms crash ne 0\n"));
  simulator.run();

  EXPECT_FALSE(truth.is_live(common::Guid{1}));
  EXPECT_TRUE(truth.is_live(common::Guid{2}));
  EXPECT_EQ(truth.uncertain(), std::vector<common::Guid>{common::Guid{1}});
}

}  // namespace
}  // namespace rgb::check
