// Schedule-replay determinism: the same (config, schedule, seed) must
// produce a byte-identical violation report on every replay, and running
// schedule-driven trials through the experiment harness must aggregate —
// violation report included — byte-identically on 1 and 8 worker threads.
#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hpp"
#include "exp/exp.hpp"
#include "rgb/rgb.hpp"

namespace rgb::check {
namespace {

AdversarialConfig small_config() {
  AdversarialConfig cfg;
  cfg.protocol = Protocol::kRgb;
  cfg.tiers = 2;
  cfg.ring_size = 3;
  cfg.initial_members = 8;
  cfg.settle = sim::sec(10);
  cfg.gen.events = 8;
  cfg.gen.window = sim::sec(5);
  return cfg;
}

/// A profile RGB is *documented to fail* for some seeds (partition/heal is
/// the paper's future-work extension): seed 2 deterministically violates,
/// which is exactly what the determinism tests need — identical non-empty
/// reports, not just identical "OK". (Seed 1 violated under PR2's
/// full-table view sync; the digest-first message pattern of PR3 shifted
/// that seed's trajectory to passing, while ~half the seeds of this
/// profile still violate — the open item is unchanged in character.)
AdversarialConfig violating_config() {
  AdversarialConfig cfg = small_config();
  cfg.gen.crashes = false;
  cfg.gen.drop_bursts = false;
  cfg.gen.handoffs = true;
  cfg.gen.partitions = true;
  cfg.settle = sim::sec(20);
  cfg.gen.window = sim::sec(10);
  cfg.gen.events = 10;
  return cfg;
}
constexpr std::uint64_t kViolatingSeed = 2;

TEST(ScheduleReplay, SameSeedAndScheduleGiveIdenticalResults) {
  const AdversarialConfig cfg = small_config();
  const FaultSchedule schedule = random_schedule_for(cfg, 7);
  const CheckRunResult a = run_schedule(cfg, schedule, 7);
  const CheckRunResult b = run_schedule(cfg, schedule, 7);
  EXPECT_EQ(a.report.format(), b.report.format());
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

TEST(ScheduleReplay, ViolationReportReplaysByteIdentically) {
  const AdversarialConfig cfg = violating_config();
  const FaultSchedule schedule = random_schedule_for(cfg, kViolatingSeed);
  const CheckRunResult a = run_schedule(cfg, schedule, kViolatingSeed);
  ASSERT_FALSE(a.passed())
      << "expected a violating partition seed (update kViolatingSeed if the "
         "partition extension starts passing)";
  const CheckRunResult b = run_schedule(cfg, schedule, kViolatingSeed);
  EXPECT_EQ(a.report.format(), b.report.format());
  EXPECT_GT(a.report.size(), 0u);
}

TEST(ScheduleReplay, MinimizedScheduleStillViolatesAndIsDeterministic) {
  const AdversarialConfig cfg = violating_config();
  const FaultSchedule schedule = random_schedule_for(cfg, kViolatingSeed);
  std::uint64_t runs_a = 0, runs_b = 0;
  const FaultSchedule min_a = minimize(cfg, schedule, kViolatingSeed, &runs_a);
  const FaultSchedule min_b = minimize(cfg, schedule, kViolatingSeed, &runs_b);
  EXPECT_EQ(min_a, min_b);
  EXPECT_EQ(runs_a, runs_b);
  EXPECT_LE(min_a.events.size(), schedule.events.size());
  // The minimized schedule reproduces the violation...
  EXPECT_FALSE(run_schedule(cfg, min_a, kViolatingSeed).passed());
  // ...and round-trips through the text format into the same repro.
  const FaultSchedule reparsed = parse_schedule(min_a.serialize());
  EXPECT_FALSE(run_schedule(cfg, reparsed, kViolatingSeed).passed());
}

TEST(ScheduleReplay, MinimizeReturnsPassingScheduleUnchanged) {
  const AdversarialConfig cfg = small_config();
  const FaultSchedule schedule = random_schedule_for(cfg, 7);
  ASSERT_TRUE(run_schedule(cfg, schedule, 7).passed());
  EXPECT_EQ(minimize(cfg, schedule, 7), schedule);
}

/// The satellite contract: same seed+schedule ⇒ identical violation report
/// at 1 and 8 exp-runner threads, exercised through the real TrialRunner +
/// CheckObserver plumbing with a violating cell in the mix.
TEST(ScheduleReplay, HarnessReportIdenticalAcrossThreadCounts) {
  exp::Scenario scenario;
  scenario.id = "replay.determinism";
  scenario.title = "schedule replay under the runner";
  scenario.paper_ref = "test";
  scenario.metrics = {"violations", "events"};
  scenario.cells.push_back(exp::ParamSet{{"partitions", 0.0}});
  scenario.cells.push_back(exp::ParamSet{{"partitions", 1.0}});
  scenario.trials_per_cell = 3;
  scenario.check_mask = exp::kCheckAll;
  scenario.run = [](const exp::TrialContext& ctx) -> std::vector<double> {
    AdversarialConfig cfg = ctx.params.get_int("partitions") != 0
                                ? violating_config()
                                : small_config();
    // Shrink the violating profile: this test needs determinism, not depth.
    cfg.settle = sim::sec(8);
    auto chk = exp::begin_check(ctx);
    const FaultSchedule schedule = random_schedule_for(cfg, ctx.seed);
    const CheckRunResult result = run_schedule(
        cfg, schedule, ctx.seed, chk.get(), ctx.cell_index, ctx.trial_index);
    return {double(result.report.size()), double(result.events_applied)};
  };

  const auto run_with = [&](unsigned threads) {
    CheckObserver observer{scenario.check_mask};
    exp::RunnerOptions options;
    options.threads = threads;
    options.base_seed = 99;
    options.observer = &observer;
    const exp::TrialRunner runner{options};
    const exp::RunResult result = runner.run(scenario);
    std::ostringstream csv;
    exp::write_csv(result, csv);
    return std::make_pair(csv.str(), observer.report().format());
  };

  const auto [csv1, report1] = run_with(1);
  const auto [csv8, report8] = run_with(8);
  EXPECT_EQ(csv1, csv8);
  EXPECT_EQ(report1, report8);
}

TEST(ScheduleDriverTest, SkipsImpossibleMemberActions) {
  // A handoff to a crashed AP and ops on dead members must be skipped by
  // the driver — neither the service nor ground truth may record them.
  common::RngStream rng{3};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 3}};
  GroundTruth truth;
  sys.join(common::Guid{1}, sys.aps()[0]);
  truth.join(common::Guid{1}, sys.aps()[0]);

  ScheduleDriver driver{simulator, network, sys, truth,
                        Topology{sys.all_nes(), sys.aps()}};
  FaultSchedule schedule = parse_schedule(
      "at 1ms crash ne 1\n"
      "at 2ms handoff mh 1 ap 1\n"   // target just crashed: skipped
      "at 3ms leave mh 9\n"          // unknown member: skipped
      "at 4ms handoff mh 1 ap 2\n"); // valid
  driver.arm(schedule);
  simulator.run();

  EXPECT_EQ(driver.events_applied(), 2u);  // the crash + the valid handoff
  EXPECT_EQ(truth.ap_of(common::Guid{1}), sys.aps()[2]);
}

TEST(ScheduleDriverTest, ApCrashStrandsMembersIntoUncertainty) {
  common::RngStream rng{3};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{1, 3}};
  GroundTruth truth;
  sys.join(common::Guid{1}, sys.aps()[0]);
  truth.join(common::Guid{1}, sys.aps()[0]);
  sys.join(common::Guid{2}, sys.aps()[1]);
  truth.join(common::Guid{2}, sys.aps()[1]);

  ScheduleDriver driver{simulator, network, sys, truth,
                        Topology{sys.all_nes(), sys.aps()}};
  driver.arm(parse_schedule("at 1ms crash ne 0\n"));
  simulator.run();

  EXPECT_FALSE(truth.is_live(common::Guid{1}));
  EXPECT_TRUE(truth.is_live(common::Guid{2}));
  EXPECT_EQ(truth.uncertain(), std::vector<common::Guid>{common::Guid{1}});
}

}  // namespace
}  // namespace rgb::check
