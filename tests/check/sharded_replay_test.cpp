// Shard-axis determinism for conformance runs: the same (config, schedule,
// seed) must produce byte-identical reports for every shard worker count
// (1, 2, 8), alone and through the experiment harness at 1 and 8 trial
// threads — including a crash+partition+handoff schedule that forces
// cross-shard outbox handoff and post-heal reconciliation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "exp/exp.hpp"

namespace rgb::check {
namespace {

AdversarialConfig sharded_config(unsigned shard_workers) {
  AdversarialConfig cfg;
  cfg.protocol = Protocol::kRgb;
  cfg.tiers = 2;
  cfg.ring_size = 3;  // 3 logical shards, one per tier-0 region
  cfg.initial_members = 8;
  cfg.settle = sim::sec(10);
  cfg.shard_workers = shard_workers;
  return cfg;
}

/// Crash + partition + cross-region handoff: member 1 starts on AP index 0
/// (region 0) and moves to AP index 7 (region 2), so the attachment record
/// and the notify/ack traffic must cross shard boundaries; the crash and
/// the partition exercise detection and post-heal reconciliation across
/// the same boundaries.
FaultSchedule cross_shard_schedule() {
  return parse_schedule(
      "schedule cross-shard\n"
      "at 1s crash ne 5\n"
      "at 2s partition ne 0 1\n"
      "at 3s handoff mh 1 ap 7\n"
      "at 4s recover ne 5\n"
      "at 5s heal\n");
}

struct RunDigest {
  std::string report;
  std::uint64_t events_applied;
  std::uint64_t messages_sent;
  bool passed;
  bool operator==(const RunDigest&) const = default;
};

RunDigest digest(const AdversarialConfig& cfg, const FaultSchedule& schedule,
                 std::uint64_t seed) {
  const CheckRunResult r = run_schedule(cfg, schedule, seed);
  return RunDigest{r.report.format(), r.events_applied, r.messages_sent,
                   r.passed()};
}

TEST(ShardedReplay, CrossShardScheduleIdenticalAcrossWorkerCounts) {
  const FaultSchedule schedule = cross_shard_schedule();
  const RunDigest one = digest(sharded_config(1), schedule, 11);
  EXPECT_TRUE(one.passed) << one.report;
  EXPECT_EQ(digest(sharded_config(2), schedule, 11), one);
  EXPECT_EQ(digest(sharded_config(8), schedule, 11), one);
}

TEST(ShardedReplay, RandomSchedulesIdenticalAcrossWorkerCounts) {
  // Random full-profile schedules (crashes + bursts + handoffs +
  // partitions), a few seeds deep: the sharded trajectory may differ from
  // serial (striped RNG) but never across worker counts.
  AdversarialConfig gen_cfg = sharded_config(1);
  gen_cfg.gen.partitions = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const FaultSchedule schedule = random_schedule_for(gen_cfg, seed);
    AdversarialConfig cfg = gen_cfg;
    const RunDigest one = digest(cfg, schedule, seed);
    cfg.shard_workers = 2;
    EXPECT_EQ(digest(cfg, schedule, seed), one) << "seed " << seed;
    cfg.shard_workers = 8;
    EXPECT_EQ(digest(cfg, schedule, seed), one) << "seed " << seed;
  }
}

TEST(ShardedReplay, ChurnWithStabilityIdenticalAcrossWorkerCounts) {
  // The stability layer's alert/cut machinery plus sustained churn windows:
  // alert timers, batched cuts and the churn expansion must all stay on the
  // deterministic sharded path.
  AdversarialConfig gen_cfg = sharded_config(1);
  gen_cfg.stability = true;
  gen_cfg.gen.churn = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const FaultSchedule schedule = random_schedule_for(gen_cfg, seed);
    AdversarialConfig cfg = gen_cfg;
    const RunDigest one = digest(cfg, schedule, seed);
    cfg.shard_workers = 2;
    EXPECT_EQ(digest(cfg, schedule, seed), one) << "seed " << seed;
    cfg.shard_workers = 8;
    EXPECT_EQ(digest(cfg, schedule, seed), one) << "seed " << seed;
  }
}

TEST(ShardedReplay, ViolatingRunReportsIdenticallyAcrossWorkerCounts) {
  // An unhealed split violates convergence by design; the violation report
  // (message counts, sampled timestamps, flight tail) must not depend on
  // the worker count either.
  const FaultSchedule schedule = parse_schedule(
      "schedule unhealed\n"
      "at 1s partition ne 0 1\n"
      "at 2s handoff mh 1 ap 7\n");
  const RunDigest one = digest(sharded_config(1), schedule, 4);
  ASSERT_FALSE(one.passed);
  EXPECT_GT(one.report.size(), 0u);
  EXPECT_EQ(digest(sharded_config(2), schedule, 4), one);
  EXPECT_EQ(digest(sharded_config(8), schedule, 4), one);
}

TEST(ShardedReplay, HarnessOutputIdenticalAcrossShardAndThreadCounts) {
  // The full grid: {1, 2, 8} shard workers x {1, 8} exp-runner threads,
  // driven through the real TrialRunner + CheckObserver plumbing. All six
  // (CSV, check report) pairs must be byte-identical.
  const auto scenario_for = [](unsigned shard_workers) {
    exp::Scenario scenario;
    scenario.id = "replay.sharded";
    scenario.title = "sharded schedule replay under the runner";
    scenario.paper_ref = "test";
    scenario.metrics = {"violations", "events", "msgs"};
    scenario.cells.push_back(exp::ParamSet{{"mode", 0.0}});
    scenario.cells.push_back(exp::ParamSet{{"mode", 1.0}});
    scenario.trials_per_cell = 2;
    scenario.check_mask = exp::kCheckAll;
    scenario.run =
        [shard_workers](const exp::TrialContext& ctx) -> std::vector<double> {
      AdversarialConfig cfg = sharded_config(shard_workers);
      cfg.settle = sim::sec(8);
      cfg.gen.partitions = ctx.params.get_int("mode") == 1;
      auto chk = exp::begin_check(ctx);
      const FaultSchedule schedule = random_schedule_for(cfg, ctx.seed);
      const CheckRunResult result = run_schedule(
          cfg, schedule, ctx.seed, chk.get(), ctx.cell_index,
          ctx.trial_index);
      return {double(result.report.size()), double(result.events_applied),
              double(result.messages_sent)};
    };
    return scenario;
  };

  const auto run_grid = [&](unsigned shard_workers, unsigned threads) {
    CheckObserver observer{exp::kCheckAll};
    exp::RunnerOptions options;
    options.threads = threads;
    options.base_seed = 99;
    options.observer = &observer;
    const exp::TrialRunner runner{options};
    const exp::RunResult result = runner.run(scenario_for(shard_workers));
    std::ostringstream csv;
    exp::write_csv(result, csv);
    return csv.str() + "\n===\n" + observer.report().format();
  };

  const std::string baseline = run_grid(1, 1);
  for (const unsigned shard_workers : {1u, 2u, 8u}) {
    for (const unsigned threads : {1u, 8u}) {
      if (shard_workers == 1 && threads == 1) continue;
      EXPECT_EQ(run_grid(shard_workers, threads), baseline)
          << "shard_workers=" << shard_workers << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace rgb::check
