// Shard-axis determinism for the scale bench: the deterministic
// (timed=false) BENCH json artifact must be byte-identical for every shard
// worker count — the trajectory is a function of the logical shard count
// (ring_size), never of the execution parallelism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/bench.hpp"

namespace rgb::exp {
namespace {

ScaleConfig small_base(unsigned shard_workers) {
  ScaleConfig base;
  base.tiers = 2;
  base.ring_size = 3;
  base.warmup_ticks = 4;
  base.steady_ticks = 4;
  base.shard_workers = shard_workers;
  return base;
}

std::string bench_json(unsigned shard_workers) {
  std::ostringstream log, json;
  SweepModes modes;
  modes.full = false;  // digest-only keeps the test quick
  modes.snapshot = true;
  const auto stats = run_scale_sweep(small_base(shard_workers), {300}, modes,
                                     log, /*timed=*/false);
  EXPECT_TRUE(all_converged(stats));
  write_bench_json(small_base(shard_workers), stats, json);
  return json.str();
}

TEST(ShardedBench, ArtifactByteIdenticalAcrossWorkerCounts) {
  const std::string one = bench_json(1);
  EXPECT_NE(one.find("\"sharded\": true"), std::string::npos);
  EXPECT_EQ(bench_json(2), one);
  EXPECT_EQ(bench_json(8), one);
}

TEST(ShardedBench, ShardedTrialConvergesWithZeroDivergence) {
  ScaleConfig config = small_base(2);
  config.members = 300;
  const ScaleStats stats = run_scale_trial(config, /*timed=*/false);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.join_divergence, 0u);
  // The designated-stripe dedup rule: exactly one join-latency sample per
  // member, no matter how many shards observed the join at the root.
  EXPECT_EQ(stats.join_latency.count, config.members);
}

}  // namespace
}  // namespace rgb::exp
