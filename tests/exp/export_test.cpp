#include "exp/export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "exp/runner.hpp"

namespace rgb::exp {
namespace {

RunResult sample_result() {
  // Hand-built aggregate so expected strings are exact.
  MetricSummary fw;
  fw.name = "fw";
  fw.count = 4;
  fw.mean = 0.75;
  fw.std_error = 0.25;
  fw.stddev = 0.5;
  fw.min = 0.0;
  fw.max = 1.0;
  fw.p50 = 1.0;
  fw.p99 = 1.0;

  CellResult cell;
  cell.params = ParamSet{{"f", 0.005}, {"k", 2.0}};
  cell.trials = 4;
  cell.metrics = {fw};

  RunResult r;
  r.scenario_id = "test.export";
  r.base_seed = 42;
  r.total_trials = 4;
  r.cells = {cell};
  r.threads_used = 8;       // must NOT appear in any export
  r.wall_ms = 123.456;      // must NOT appear in any export
  return r;
}

TEST(FormatDouble, RoundTripsAndStaysShort) {
  EXPECT_EQ(format_double(0.005), "0.005");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(80.0), "80");  // not "8e+01"
  EXPECT_EQ(format_double(-125.0), "-125");
  EXPECT_EQ(format_double(99.969), "99.969");
  // A value needing full precision still round-trips.
  const double awkward = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(format_double(awkward).c_str(), nullptr), awkward);
}

TEST(Export, CsvMatchesGolden) {
  std::ostringstream os;
  write_csv(sample_result(), os);
  EXPECT_EQ(os.str(),
            "scenario,cell,params,metric,count,mean,std_error,stddev,min,max,"
            "p50,p99\n"
            "test.export,0,f=0.005 k=2,fw,4,0.75,0.25,0.5,0,1,1,1\n");
}

TEST(Export, JsonMatchesGolden) {
  std::ostringstream os;
  write_json(sample_result(), os);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"scenario\": \"test.export\",\n"
            "  \"base_seed\": 42,\n"
            "  \"total_trials\": 4,\n"
            "  \"cells\": [\n"
            "    {\n"
            "      \"params\": {\"f\": 0.005, \"k\": 2},\n"
            "      \"trials\": 4,\n"
            "      \"metrics\": {\n"
            "        \"fw\": {\"count\": 4, \"mean\": 0.75, \"std_error\": "
            "0.25, \"stddev\": 0.5, \"min\": 0, \"max\": 1, \"p50\": 1, "
            "\"p99\": 1}\n"
            "      }\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(Export, ExportsExcludeTimingAndThreadCount) {
  RunResult a = sample_result();
  RunResult b = sample_result();
  b.threads_used = 1;
  b.wall_ms = 0.000001;
  std::ostringstream csv_a, csv_b, json_a, json_b;
  write_csv(a, csv_a);
  write_csv(b, csv_b);
  write_json(a, json_a);
  write_json(b, json_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(Export, CsvQuotesFieldsContainingDelimiters) {
  RunResult r = sample_result();
  r.scenario_id = "weird,id";
  r.cells.front().metrics.front().name = "a\"b";
  std::ostringstream os;
  write_csv(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"weird,id\""), std::string::npos);
  EXPECT_NE(out.find("\"a\"\"b\""), std::string::npos);
  // Data row still has the header's 12 fields after quoting.
  const std::string row = out.substr(out.find('\n') + 1);
  int commas = 0;
  bool quoted = false;
  for (const char c : row) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++commas;
  }
  EXPECT_EQ(commas, 11);
}

TEST(Export, JsonEscapesControlCharactersInNames) {
  RunResult r = sample_result();
  r.scenario_id = "cr\rlf";
  std::ostringstream os;
  write_json(r, os);
  EXPECT_NE(os.str().find("cr\\u000dlf"), std::string::npos);
}

TEST(Export, JsonMapsNonFiniteValuesToNull) {
  RunResult r = sample_result();
  r.cells.front().metrics.front().mean = std::nan("");
  r.cells.front().metrics.front().p99 =
      std::numeric_limits<double>::infinity();
  std::ostringstream os;
  write_json(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"mean\": null"), std::string::npos);
  EXPECT_NE(out.find("\"p99\": null"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(Export, TableHandlesCellsWithDifferentParamSets) {
  // Cells need not share params; the table header is the union and rows
  // pad missing params (regression: rows wider than the header overflowed
  // TextTable's width computation).
  RunResult r = sample_result();
  CellResult extra = r.cells.front();
  extra.params = ParamSet{{"f", 0.01}, {"k", 1.0}, {"warm", 1.0}};
  r.cells.push_back(extra);
  const common::TextTable table = to_table(r);
  EXPECT_EQ(table.rows(), 2u);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("warm"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // first cell lacks "warm"
}

TEST(Export, TableHasOneRowPerCellAndParamColumns) {
  const common::TextTable table = to_table(sample_result());
  EXPECT_EQ(table.rows(), 1u);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("f"), std::string::npos);
  EXPECT_NE(out.find("fw se"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace rgb::exp
