// Determinism-under-parallelism contract of the trial runner: the same
// (scenario, base seed, trial count) must aggregate to byte-identical
// results no matter how many worker threads executed the trials.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/export.hpp"
#include "exp/scenarios.hpp"

namespace rgb::exp {
namespace {

/// A stochastic toy scenario: per-trial output depends only on the context
/// seed, with enough cells/trials that a nondeterministic fold would show.
Scenario seed_mix_scenario() {
  Scenario s;
  s.id = "test.seed_mix";
  s.title = "seed-dependent toy metric";
  s.paper_ref = "none";
  s.metrics = {"u", "exp"};
  for (int c = 0; c < 7; ++c) {
    s.cells.push_back(ParamSet{{"c", double(c)}});
  }
  s.trials_per_cell = 40;
  s.run = [](const TrialContext& ctx) {
    auto rng = ctx.rng();
    const double u = rng.next_double() + ctx.params.get("c");
    return std::vector<double>{u, rng.exponential(1.0 + ctx.trial_index)};
  };
  return s;
}

std::string csv_of(const RunResult& result) {
  std::ostringstream os;
  write_csv(result, os);
  return os.str();
}

std::string json_of(const RunResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

TEST(TrialRunner, AggregateIsByteIdenticalAcross1And2And8Threads) {
  const Scenario scenario = seed_mix_scenario();
  const RunResult r1 = TrialRunner{{.threads = 1, .base_seed = 99}}.run(scenario);
  const RunResult r2 = TrialRunner{{.threads = 2, .base_seed = 99}}.run(scenario);
  const RunResult r8 = TrialRunner{{.threads = 8, .base_seed = 99}}.run(scenario);
  EXPECT_EQ(csv_of(r1), csv_of(r2));
  EXPECT_EQ(csv_of(r1), csv_of(r8));
  EXPECT_EQ(json_of(r1), json_of(r8));
  EXPECT_EQ(r8.threads_used, 8u);
  EXPECT_EQ(r1.threads_used, 1u);
}

TEST(TrialRunner, BuiltinReliabilityScenarioDeterministicAcrossThreadCounts) {
  // The acceptance-criterion scenario, shrunk to a smoke-sized trial count.
  const Scenario* scenario = builtin_scenarios().find("table2.fw_mc");
  ASSERT_NE(scenario, nullptr);
  RunnerOptions opts;
  opts.trials_override = 200;
  opts.base_seed = 7;
  opts.threads = 1;
  const RunResult r1 = TrialRunner{opts}.run(*scenario);
  opts.threads = 8;
  const RunResult r8 = TrialRunner{opts}.run(*scenario);
  EXPECT_EQ(csv_of(r1), csv_of(r8));
  // Sanity: at f=0.1%, k=1 the hierarchy should almost always function well.
  EXPECT_GT(r1.cells.front().metrics.front().mean, 0.95);
}

TEST(TrialRunner, DifferentSeedsGiveDifferentAggregates) {
  const Scenario scenario = seed_mix_scenario();
  const RunResult a = TrialRunner{{.threads = 2, .base_seed = 1}}.run(scenario);
  const RunResult b = TrialRunner{{.threads = 2, .base_seed = 2}}.run(scenario);
  EXPECT_NE(csv_of(a), csv_of(b));
}

TEST(TrialRunner, TrialsOverrideAndSummaryStatistics) {
  Scenario s;
  s.id = "test.linear";
  s.title = "trial index as metric";
  s.paper_ref = "none";
  s.metrics = {"t"};
  s.cells = {ParamSet{{"a", 0.0}}};
  s.trials_per_cell = 3;
  s.run = [](const TrialContext& ctx) {
    return std::vector<double>{double(ctx.trial_index)};
  };
  const RunResult r =
      TrialRunner{{.threads = 4, .base_seed = 5, .trials_override = 9}}.run(s);
  ASSERT_EQ(r.cells.size(), 1u);
  const MetricSummary& m = r.cells.front().metrics.front();
  EXPECT_EQ(m.count, 9u);           // override wins over trials_per_cell
  EXPECT_DOUBLE_EQ(m.mean, 4.0);    // mean of 0..8
  EXPECT_EQ(m.min, 0.0);
  EXPECT_EQ(m.max, 8.0);
  const double expected_sd = std::sqrt(60.0 / 8.0);  // unbiased over 0..8
  EXPECT_NEAR(m.stddev, expected_sd, 1e-12);
  EXPECT_NEAR(m.std_error, expected_sd / 3.0, 1e-12);
}

TEST(TrialRunner, WorkersRunTrialsConcurrently) {
  Scenario s;
  s.id = "test.threads";
  s.title = "peak in-flight trial count";
  s.paper_ref = "none";
  s.metrics = {"x"};
  s.cells = {ParamSet{{"a", 0.0}}};
  s.trials_per_cell = 64;
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  s.run = [&](const TrialContext&) {
    const int now = in_flight.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    in_flight.fetch_sub(1);
    return std::vector<double>{1.0};
  };
  (void)TrialRunner{{.threads = 4}}.run(s);
  // At least two workers must have been inside a trial simultaneously —
  // i.e. the pool really runs trials in parallel. (Not asserted at 4: on a
  // single-core CI box the scheduler need not overlap all workers at once.)
  EXPECT_GE(peak.load(), 2);
}

TEST(TrialRunner, WrongMetricArityThrows) {
  Scenario s;
  s.id = "test.arity";
  s.title = "returns too few metrics";
  s.paper_ref = "none";
  s.metrics = {"a", "b"};
  s.cells = {ParamSet{{"x", 0.0}}};
  s.trials_per_cell = 2;
  s.run = [](const TrialContext&) { return std::vector<double>{1.0}; };
  EXPECT_THROW((void)TrialRunner{{.threads = 2}}.run(s), std::runtime_error);
}

TEST(TrialRunner, TrialExceptionIsRethrownOnCallerThread) {
  Scenario s;
  s.id = "test.throws";
  s.title = "trial throws";
  s.paper_ref = "none";
  s.metrics = {"x"};
  s.cells = {ParamSet{{"x", 0.0}}};
  s.trials_per_cell = 16;
  s.run = [](const TrialContext& ctx) -> std::vector<double> {
    if (ctx.trial_index == 7) throw std::runtime_error("trial 7 exploded");
    return {1.0};
  };
  EXPECT_THROW((void)TrialRunner{{.threads = 4}}.run(s), std::runtime_error);
  EXPECT_THROW((void)TrialRunner{{.threads = 1}}.run(s), std::runtime_error);
}

}  // namespace
}  // namespace rgb::exp
