// bench.multigroup determinism and sublinearity: the deterministic
// (timed=false) artifact must be byte-identical for every shard worker
// count, every cell must converge with zero per-group divergence, and the
// steady-state kViewSync bytes per link per tick must stay flat as the
// group count grows (the kSummary push-pull keeps the steady frame O(1) in
// G, which is the whole point of multi-group serving on one hierarchy).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/bench.hpp"

namespace rgb::exp {
namespace {

MultigroupConfig small_base(unsigned shard_workers) {
  MultigroupConfig base;
  base.members_per_group = 20;
  base.warmup_ticks = 4;
  base.steady_ticks = 4;
  base.shard_workers = shard_workers;
  return base;
}

std::string multigroup_json(unsigned shard_workers) {
  std::ostringstream log, json;
  const auto cells = run_multigroup_sweep(small_base(shard_workers), {1, 6},
                                          log, /*timed=*/false);
  EXPECT_TRUE(all_multigroup_clean(cells));
  write_multigroup_json(small_base(shard_workers), cells, json);
  return json.str();
}

TEST(MultigroupBench, ArtifactByteIdenticalAcrossWorkerCounts) {
  const std::string one = multigroup_json(1);
  EXPECT_NE(one.find("\"bench\": \"bench_multigroup\""), std::string::npos);
  EXPECT_NE(one.find("\"sharded\": true"), std::string::npos);
  EXPECT_EQ(multigroup_json(2), one);
  EXPECT_EQ(multigroup_json(8), one);
}

TEST(MultigroupBench, SteadyBytesPerLinkStayFlatInGroupCount) {
  std::ostringstream log;
  const auto cells =
      run_multigroup_sweep(small_base(0), {1, 8}, log, /*timed=*/false);
  ASSERT_EQ(cells.size(), 2u);
  ASSERT_TRUE(all_multigroup_clean(cells));
  const MultigroupStats& g1 = cells[0];
  const MultigroupStats& g8 = cells[1];
  EXPECT_EQ(g8.total_members, 8 * g1.total_members);
  ASSERT_GT(g1.bytes_per_link_tick, 0.0);
  // Acceptance shape: G groups on one hierarchy must beat G independent
  // single-group hierarchies by at least 4x on steady bytes per link; the
  // kSummary fast path actually keeps the per-tick frame near-constant.
  EXPECT_LT(g8.bytes_per_link_tick,
            0.25 * 8.0 * g1.bytes_per_link_tick);
  EXPECT_LT(g8.bytes_per_link_tick, 2.0 * g1.bytes_per_link_tick);
}

TEST(MultigroupBench, TrialReportsPerGroupConvergence) {
  MultigroupConfig config = small_base(2);
  config.groups = 5;
  const MultigroupStats stats = run_multigroup_trial(config, /*timed=*/false);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.group_divergence, 0u);
  EXPECT_EQ(stats.total_members, 100u);
  // Every NE in the 2-tier ring-3 hierarchy hosts all 5 groups.
  EXPECT_EQ(stats.groups_created, 5u * stats.ne_count);
  // Untimed runs zero the wall-clock fields (the determinism contract).
  EXPECT_EQ(stats.join_wall_ms, 0.0);
  EXPECT_EQ(stats.steady_wall_ms, 0.0);
  EXPECT_EQ(stats.peak_rss_kb, 0);
}

}  // namespace
}  // namespace rgb::exp
