#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "exp/scenarios.hpp"

namespace rgb::exp {
namespace {

Scenario tiny_scenario(std::string id = "test.tiny") {
  Scenario s;
  s.id = std::move(id);
  s.title = "tiny";
  s.paper_ref = "none";
  s.metrics = {"x"};
  s.cells = {ParamSet{{"a", 1.0}}};
  s.trials_per_cell = 1;
  s.run = [](const TrialContext&) { return std::vector<double>{0.0}; };
  return s;
}

TEST(ParamSet, GetSetAndOverwrite) {
  ParamSet p{{"h", 3.0}, {"r", 5.0}};
  EXPECT_EQ(p.get("h"), 3.0);
  EXPECT_EQ(p.get_int("r"), 5);
  EXPECT_TRUE(p.has("h"));
  EXPECT_FALSE(p.has("f"));
  p.set("h", 4.0).set("f", 0.02);
  EXPECT_EQ(p.get("h"), 4.0);
  EXPECT_EQ(p.get("f"), 0.02);
  EXPECT_EQ(p.get_or("missing", -1.0), -1.0);
  EXPECT_THROW(p.get("missing"), std::out_of_range);
}

TEST(ParamSet, LabelKeepsInsertionOrderAndIntegerFormatting) {
  ParamSet p{{"r", 5.0}, {"f", 0.005}, {"k", 2.0}};
  EXPECT_EQ(p.label(), "r=5 f=0.005 k=2");
}

TEST(ParamSet, LabelRoundTripsHighPrecisionValues) {
  // Labels distinguish cells that differ beyond 6 significant digits
  // (regression: default ostream precision merged such cells in CSV).
  const ParamSet a{{"f", 0.00123456}};
  const ParamSet b{{"f", 0.001234564}};
  EXPECT_NE(a.label(), b.label());
}

TEST(ScenarioRegistry, FindAndSortedListing) {
  ScenarioRegistry reg;
  reg.add(tiny_scenario("b.second"));
  reg.add(tiny_scenario("a.first"));
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("a.first"), nullptr);
  EXPECT_EQ(reg.find("missing"), nullptr);
  const auto all = reg.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->id, "a.first");
  EXPECT_EQ(all[1]->id, "b.second");
}

TEST(ScenarioRegistry, RejectsDuplicatesAndMalformedScenarios) {
  ScenarioRegistry reg;
  reg.add(tiny_scenario());
  EXPECT_THROW(reg.add(tiny_scenario()), std::invalid_argument);

  Scenario no_cells = tiny_scenario("test.nocells");
  no_cells.cells.clear();
  EXPECT_THROW(reg.add(no_cells), std::invalid_argument);

  Scenario no_metrics = tiny_scenario("test.nometrics");
  no_metrics.metrics.clear();
  EXPECT_THROW(reg.add(no_metrics), std::invalid_argument);

  Scenario no_fn = tiny_scenario("test.nofn");
  no_fn.run = nullptr;
  EXPECT_THROW(reg.add(no_fn), std::invalid_argument);
}

TEST(TrialSeed, StableAndWellSeparated) {
  // Same inputs => same seed (the determinism anchor).
  EXPECT_EQ(trial_seed(42, "s", 0, 0), trial_seed(42, "s", 0, 0));
  // Any varying component changes the seed; all seeds distinct across a
  // realistic grid.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ULL, 2ULL}) {
    for (const char* id : {"table2.fw_mc", "fw.sweep"}) {
      for (std::size_t cell = 0; cell < 20; ++cell) {
        for (std::uint64_t trial = 0; trial < 50; ++trial) {
          seeds.insert(trial_seed(base, id, cell, trial));
        }
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 2u * 20u * 50u);
}

TEST(BuiltinScenarios, RegistryIsPopulatedAndWellFormed) {
  const ScenarioRegistry& reg = builtin_scenarios();
  EXPECT_GE(reg.size(), 8u);
  for (const Scenario* s : reg.all()) {
    EXPECT_FALSE(s->metrics.empty()) << s->id;
    EXPECT_FALSE(s->cells.empty()) << s->id;
    EXPECT_TRUE(static_cast<bool>(s->run)) << s->id;
    EXPECT_GT(s->trials_per_cell, 0u) << s->id;
  }
  ASSERT_NE(reg.find("table2.fw_mc"), nullptr);
  EXPECT_EQ(reg.find("table2.fw_mc")->cells.size(), 18u);
}

}  // namespace
}  // namespace rgb::exp
