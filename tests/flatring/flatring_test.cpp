#include "flatring/flat_ring.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rgb::flatring {
namespace {

class FlatRingTest : public rgb::testing::SimNetTest {
 protected:
  std::uint64_t token_hops() const {
    const auto it = network_.metrics().sent_per_kind.find(kRingToken);
    return it == network_.metrics().sent_per_kind.end() ? 0 : it->second;
  }
};

TEST_F(FlatRingTest, BuildsRingWithParkedToken) {
  FlatRingSystem sys{network_, FlatRingConfig{8}};
  EXPECT_EQ(sys.aps().size(), 8u);
  EXPECT_TRUE(sys.node(sys.aps().front())->parked());
}

TEST_F(FlatRingTest, JoinAtParkingNodeDisseminatesInOneCircle) {
  FlatRingSystem sys{network_, FlatRingConfig{6}};
  sys.join(common::Guid{1}, sys.aps().front());  // node 0 holds the token
  run_all();
  EXPECT_TRUE(sys.converged());
  EXPECT_EQ(sys.membership().size(), 1u);
  // The origin applies locally; the op then visits the 5 other nodes and
  // the token re-parks where the entry expires.
  EXPECT_EQ(token_hops(), 5u);
}

TEST_F(FlatRingTest, JoinElsewhereCostsWakePlusCirculation) {
  FlatRingSystem sys{network_, FlatRingConfig{6}};
  sys.join(common::Guid{1}, sys.aps()[3]);
  run_all();
  EXPECT_TRUE(sys.converged());
  // Wake chases from node 3 to the parking node 0 (3 wake hops); the empty
  // token then travels to node 3 (3 hops) and circulates the op (5 hops).
  EXPECT_GE(token_hops(), 6u);
  EXPECT_GT(network_.metrics().sent, 8u);
}

TEST_F(FlatRingTest, TokenReParksAfterQuiescence) {
  FlatRingSystem sys{network_, FlatRingConfig{5}};
  sys.join(common::Guid{1}, sys.aps()[2]);
  run_all();
  int parked = 0;
  for (const auto ap : sys.aps()) {
    if (sys.node(ap)->parked()) ++parked;
  }
  EXPECT_EQ(parked, 1);  // exactly one parking node after quiescence
}

TEST_F(FlatRingTest, MultipleOpsShareCirculation) {
  FlatRingSystem sys{network_, FlatRingConfig{10}};
  for (std::uint64_t g = 1; g <= 5; ++g) {
    sys.join(common::Guid{g}, sys.aps().front());
  }
  run_all();
  EXPECT_TRUE(sys.converged());
  EXPECT_EQ(sys.membership().size(), 5u);
  // The first join unparks the token and departs immediately; the other
  // four ops must wait for it to come back around, then share one
  // circulation — two circles total, not five.
  EXPECT_LE(token_hops(), 2u * 10u);
}

TEST_F(FlatRingTest, LifecycleLeaveFailHandoff) {
  FlatRingSystem sys{network_, FlatRingConfig{5}};
  sys.join(common::Guid{1}, sys.aps()[0]);
  sys.join(common::Guid{2}, sys.aps()[1]);
  sys.join(common::Guid{3}, sys.aps()[2]);
  run_all();
  sys.handoff(common::Guid{1}, sys.aps()[4]);
  sys.leave(common::Guid{2});
  sys.fail(common::Guid{3});
  run_all();
  EXPECT_TRUE(sys.converged());
  const auto view = sys.membership();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].guid, common::Guid{1});
  EXPECT_EQ(view[0].access_proxy, sys.aps()[4]);
}

TEST_F(FlatRingTest, LargeRingDisseminationLatencyGrowsLinearly) {
  // The §6 argument: one big ring needs O(n) hops per change.
  sim::Time t_small, t_large;
  {
    sim::Simulator s;
    net::Network n{s, common::RngStream{1}};
    FlatRingSystem sys{n, FlatRingConfig{10}};
    sys.join(common::Guid{1}, sys.aps().front());
    s.run();
    t_small = s.now();
  }
  {
    sim::Simulator s;
    net::Network n{s, common::RngStream{1}};
    FlatRingSystem sys{n, FlatRingConfig{100}};
    sys.join(common::Guid{1}, sys.aps().front());
    s.run();
    t_large = s.now();
  }
  EXPECT_GE(t_large, 8 * t_small);  // ~10x ring => ~10x circulation time
}

TEST_F(FlatRingTest, WakeFromEveryPositionEventuallyDelivers) {
  FlatRingSystem sys{network_, FlatRingConfig{7}};
  for (std::size_t i = 0; i < 7; ++i) {
    sys.join(common::Guid{i + 1}, sys.aps()[i]);
    run_all();
  }
  EXPECT_TRUE(sys.converged());
  EXPECT_EQ(sys.membership().size(), 7u);
}

}  // namespace
}  // namespace rgb::flatring
