#include "proto/process.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rgb::proto {
namespace {

class Echo : public Process {
 public:
  using Process::Process;
  using Process::send;
  using Process::set_timer;
  using Process::cancel_timer;

  void deliver(const net::Envelope& env) override {
    log.push_back(env.payload.get<std::string>());
  }
  std::vector<std::string> log;
};

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest() : network_(sim_, common::RngStream{3}) {}

  sim::Simulator sim_;
  net::Network network_;
};

TEST_F(ProcessTest, AttachesOnConstructionDetachesOnDestruction) {
  {
    Echo p{NodeId{1}, network_};
    EXPECT_TRUE(network_.is_attached(NodeId{1}));
  }
  EXPECT_FALSE(network_.is_attached(NodeId{1}));
}

TEST_F(ProcessTest, SendBetweenProcesses) {
  Echo a{NodeId{1}, network_};
  Echo b{NodeId{2}, network_};
  a.send(NodeId{2}, 0, std::string{"ping"});
  sim_.run();
  ASSERT_EQ(b.log.size(), 1u);
  EXPECT_EQ(b.log[0], "ping");
}

TEST_F(ProcessTest, TimerFiresOnce) {
  Echo a{NodeId{1}, network_};
  int fires = 0;
  a.set_timer(sim::msec(5), [&] { ++fires; });
  sim_.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim_.now(), sim::msec(5));
}

TEST_F(ProcessTest, CancelledTimerDoesNotFire) {
  Echo a{NodeId{1}, network_};
  int fires = 0;
  auto id = a.set_timer(sim::msec(5), [&] { ++fires; });
  a.cancel_timer(id);
  EXPECT_FALSE(id.valid());  // handle reset by cancel
  sim_.run();
  EXPECT_EQ(fires, 0);
}

TEST_F(ProcessTest, TimersSuppressedWhileCrashed) {
  Echo a{NodeId{1}, network_};
  int fires = 0;
  a.set_timer(sim::msec(5), [&] { ++fires; });
  network_.crash(NodeId{1});
  sim_.run();
  EXPECT_EQ(fires, 0);
}

TEST_F(ProcessTest, CrashedFlagTracksNetwork) {
  Echo a{NodeId{1}, network_};
  EXPECT_FALSE(a.crashed());
  network_.crash(NodeId{1});
  EXPECT_TRUE(a.crashed());
  network_.recover(NodeId{1});
  EXPECT_FALSE(a.crashed());
}

TEST_F(ProcessTest, PeriodicTimerTicksAtPeriod) {
  Echo a{NodeId{1}, network_};
  int ticks = 0;
  PeriodicTimer timer{network_, NodeId{1}, sim::msec(10), [&] { ++ticks; }};
  timer.start();
  sim_.run_until(sim::msec(55));
  EXPECT_EQ(ticks, 5);
  timer.stop();
  sim_.run_until(sim::msec(200));
  EXPECT_EQ(ticks, 5);
}

TEST_F(ProcessTest, PeriodicTimerSkipsTicksWhileCrashedAndResumes) {
  Echo a{NodeId{1}, network_};
  int ticks = 0;
  PeriodicTimer timer{network_, NodeId{1}, sim::msec(10), [&] { ++ticks; }};
  timer.start();
  sim_.run_until(sim::msec(25));
  EXPECT_EQ(ticks, 2);
  network_.crash(NodeId{1});
  sim_.run_until(sim::msec(65));
  EXPECT_EQ(ticks, 2);  // silent while down
  network_.recover(NodeId{1});
  sim_.run_until(sim::msec(105));
  EXPECT_EQ(ticks, 6);  // resumed
}

TEST_F(ProcessTest, PeriodicTimerStartIsIdempotent) {
  Echo a{NodeId{1}, network_};
  int ticks = 0;
  PeriodicTimer timer{network_, NodeId{1}, sim::msec(10), [&] { ++ticks; }};
  timer.start();
  timer.start();
  sim_.run_until(sim::msec(15));
  EXPECT_EQ(ticks, 1);  // not double-armed
}

TEST_F(ProcessTest, PeriodicTimerStopsOnDestruction) {
  Echo a{NodeId{1}, network_};
  int ticks = 0;
  {
    PeriodicTimer timer{network_, NodeId{1}, sim::msec(10), [&] { ++ticks; }};
    timer.start();
  }
  sim_.run_until(sim::msec(100));
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace rgb::proto
