#include "rgb/group_directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rgb/types.hpp"

namespace rgb::core {
namespace {

MembershipOp member_op(std::uint64_t gid, OpKind kind, std::uint64_t seq,
                       std::uint64_t guid, std::uint64_t ap) {
  MembershipOp op;
  op.kind = kind;
  op.uid = seq;
  op.seq = seq;
  op.claim_seq = kind == OpKind::kMemberJoin ? seq : 1;
  op.gid = GroupId{gid};
  op.member =
      MemberRecord{Guid{guid}, NodeId{ap}, proto::MemberStatus::kOperational};
  return op;
}

TEST(GroupDirectory, AppliesOpsIntoPerGroupTables) {
  GroupDirectory dir;
  EXPECT_TRUE(dir.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100)));
  EXPECT_TRUE(dir.apply(member_op(2, OpKind::kMemberJoin, 1, 10, 200)));

  // Same guid, two groups, independent records.
  ASSERT_NE(dir.table_if(GroupId{1}), nullptr);
  ASSERT_NE(dir.table_if(GroupId{2}), nullptr);
  EXPECT_EQ(dir.table_if(GroupId{1})->find(Guid{10})->access_proxy,
            NodeId{100});
  EXPECT_EQ(dir.table_if(GroupId{2})->find(Guid{10})->access_proxy,
            NodeId{200});
  EXPECT_EQ(dir.group_count(), 2u);
  EXPECT_EQ(dir.total_size(), 2u);
}

TEST(GroupDirectory, ReadPathsDoNotInstantiateGroups) {
  GroupDirectory dir;
  dir.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  EXPECT_EQ(dir.table_if(GroupId{7}), nullptr);
  EXPECT_EQ(dir.claim_of(GroupId{7}, Guid{10}), 0u);
  EXPECT_FALSE(dir.lookup(GroupId{7}, Guid{10}).has_value());
  EXPECT_EQ(dir.group_count(), 1u);
  // table() is the write path and may create.
  dir.table(GroupId{7});
  EXPECT_EQ(dir.group_count(), 2u);
}

TEST(GroupDirectory, ExportIsGidMajorGuidAscending) {
  GroupDirectory dir;
  dir.apply(member_op(5, OpKind::kMemberJoin, 1, 30, 100));
  dir.apply(member_op(2, OpKind::kMemberJoin, 2, 40, 100));
  dir.apply(member_op(5, OpKind::kMemberJoin, 3, 20, 100));
  dir.apply(member_op(2, OpKind::kMemberJoin, 4, 10, 100));

  const std::vector<TableEntry> all = dir.export_all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].gid, GroupId{2});
  EXPECT_EQ(all[0].record.guid, Guid{10});
  EXPECT_EQ(all[1].gid, GroupId{2});
  EXPECT_EQ(all[1].record.guid, Guid{40});
  EXPECT_EQ(all[2].gid, GroupId{5});
  EXPECT_EQ(all[2].record.guid, Guid{20});
  EXPECT_EQ(all[3].gid, GroupId{5});
  EXPECT_EQ(all[3].record.guid, Guid{30});

  const std::vector<TableEntry> scoped = dir.export_groups({GroupId{5}});
  ASSERT_EQ(scoped.size(), 2u);
  EXPECT_EQ(scoped[0].gid, GroupId{5});
  EXPECT_EQ(scoped[1].gid, GroupId{5});
}

TEST(GroupDirectory, ImportRoundTripsAndMergesByLattice) {
  GroupDirectory a;
  a.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  a.apply(member_op(3, OpKind::kMemberJoin, 2, 20, 100));

  GroupDirectory b;
  EXPECT_TRUE(b.import_all(a.export_all()));
  EXPECT_EQ(b.export_all().size(), a.export_all().size());
  EXPECT_EQ(b.combined_digest().hash, a.combined_digest().hash);

  // Re-importing the same entries is a no-op.
  EXPECT_FALSE(b.import_all(a.export_all()));
}

TEST(GroupDirectory, CombinedDigestMixesGroupId) {
  // Identical member records in different groups must hash differently:
  // the combined digest covers (gid, entry), not just the entries.
  GroupDirectory a;
  a.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  GroupDirectory b;
  b.apply(member_op(2, OpKind::kMemberJoin, 1, 10, 100));

  EXPECT_NE(a.combined_digest().hash, b.combined_digest().hash);
  EXPECT_EQ(a.combined_digest().count, 1u);
}

TEST(GroupDirectory, PackedDigestsAreGidAscendingAndSkipEmptyGroups) {
  GroupDirectory dir;
  dir.apply(member_op(9, OpKind::kMemberJoin, 1, 10, 100));
  dir.apply(member_op(4, OpKind::kMemberJoin, 2, 20, 100));
  dir.table(GroupId{6});  // instantiated but empty: not packed

  const std::vector<GroupDigest> packed = dir.packed_digests();
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(packed[0].gid, GroupId{4});
  EXPECT_EQ(packed[0].count, 1u);
  EXPECT_EQ(packed[1].gid, GroupId{9});
}

TEST(GroupDirectory, DifferingGroupsFindsMismatchAndSenderOnlyGroups) {
  GroupDirectory a;
  a.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  a.apply(member_op(2, OpKind::kMemberJoin, 2, 20, 100));

  GroupDirectory b;
  b.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));  // same as a
  b.apply(member_op(2, OpKind::kMemberJoin, 3, 30, 100));  // differs
  b.apply(member_op(5, OpKind::kMemberJoin, 4, 40, 100));  // only b has it

  const std::vector<GroupId> diff = a.differing_groups(b.packed_digests());
  // Group 1 matches; group 2 mismatches; group 5 is sender-only (a must
  // pull it to bootstrap). gid-ascending.
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], GroupId{2});
  EXPECT_EQ(diff[1], GroupId{5});

  // Receiver-only groups are reported too: b never heard of group 7.
  a.apply(member_op(7, OpKind::kMemberJoin, 5, 70, 100));
  const std::vector<GroupId> diff2 = a.differing_groups(b.packed_digests());
  EXPECT_TRUE(std::find(diff2.begin(), diff2.end(), GroupId{7}) != diff2.end());
}

TEST(GroupDirectory, NewerThanIsGroupScoped) {
  GroupDirectory a;
  a.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  a.apply(member_op(2, OpKind::kMemberJoin, 2, 20, 100));
  a.apply(member_op(2, OpKind::kMemberJoin, 3, 21, 100));

  GroupDirectory b;
  b.apply(member_op(2, OpKind::kMemberJoin, 2, 20, 100));

  // Scoped to group 2: only the entry b lacks comes back.
  const auto diff = a.newer_than(b.export_all(), {GroupId{2}});
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].gid, GroupId{2});
  EXPECT_EQ(diff[0].record.guid, Guid{21});

  // Empty scope = every group a holds.
  const auto full = a.newer_than(b.export_all(), {});
  EXPECT_EQ(full.size(), 2u);
}

TEST(GroupDirectory, MergedViewsDeduplicateAcrossGroups) {
  GroupDirectory dir;
  dir.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  dir.apply(member_op(2, OpKind::kMemberJoin, 2, 10, 100));  // same member
  dir.apply(member_op(2, OpKind::kMemberJoin, 3, 30, 200));

  EXPECT_TRUE(dir.contains(Guid{10}));
  EXPECT_FALSE(dir.contains(Guid{99}));

  const std::vector<MemberRecord> merged = dir.merged_snapshot();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].guid, Guid{10});
  EXPECT_EQ(merged[1].guid, Guid{30});

  const std::vector<MemberRecord> at100 = dir.merged_members_at(NodeId{100});
  ASSERT_EQ(at100.size(), 1u);
  EXPECT_EQ(at100[0].guid, Guid{10});

  const auto grouped = dir.grouped_members_at(NodeId{100});
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].first, GroupId{1});
  EXPECT_EQ(grouped[1].first, GroupId{2});

  const std::vector<GroupId> hosting = dir.groups_hosting(Guid{10}, NodeId{100});
  ASSERT_EQ(hosting.size(), 2u);
  EXPECT_EQ(hosting[0], GroupId{1});
  EXPECT_EQ(hosting[1], GroupId{2});
}

TEST(GroupDirectory, QueueRoutesByGroupAndDrainsNeOpsFirst) {
  GroupDirectory dir;
  dir.insert(member_op(3, OpKind::kMemberJoin, 1, 10, 100));
  dir.insert(member_op(1, OpKind::kMemberJoin, 2, 20, 100));

  MembershipOp ne_op;
  ne_op.kind = OpKind::kNeFail;
  ne_op.uid = 3;
  ne_op.seq = 3;
  ne_op.ne = NodeId{500};
  dir.insert(ne_op);

  EXPECT_FALSE(dir.queue_empty());
  EXPECT_EQ(dir.queue_size(), 3u);
  EXPECT_EQ(dir.ops_inserted(), 3u);

  const MessageQueue::Batch batch = dir.drain();
  ASSERT_EQ(batch.ops.size(), 3u);
  // NE ops ride first, then member ops in gid order.
  EXPECT_EQ(batch.ops[0].kind, OpKind::kNeFail);
  EXPECT_EQ(batch.ops[1].gid, GroupId{1});
  EXPECT_EQ(batch.ops[2].gid, GroupId{3});
  EXPECT_TRUE(dir.queue_empty());
}

TEST(GroupDirectory, ClearEmptiesEverything) {
  GroupDirectory dir;
  dir.apply(member_op(1, OpKind::kMemberJoin, 1, 10, 100));
  dir.insert(member_op(1, OpKind::kMemberJoin, 2, 20, 100));
  dir.clear();
  EXPECT_TRUE(dir.empty());
  EXPECT_TRUE(dir.queue_empty());
  EXPECT_EQ(dir.group_count(), 0u);
  EXPECT_EQ(dir.combined_digest().count, 0u);
}

TEST(MemberGroups, StrideIsSortedDeterministicAndClamped) {
  // guid 7 with 10 groups, 3 per member: starts at 1 + 7 % 10 = 8, strides
  // cyclically — {8, then wraps}. Result is sorted gid-ascending.
  const std::vector<GroupId> got = member_groups(Guid{7}, 10, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_TRUE(std::find(got.begin(), got.end(), GroupId{8}) != got.end());

  // Same inputs, same answer (no hidden state).
  EXPECT_EQ(member_groups(Guid{7}, 10, 3), got);

  // groups_per_member clamps to the group count; zero means one.
  EXPECT_EQ(member_groups(Guid{1}, 2, 99).size(), 2u);
  EXPECT_EQ(member_groups(Guid{1}, 4, 0).size(), 1u);

  // Single-group config: everyone lands in GroupId{1}.
  const std::vector<GroupId> single = member_groups(Guid{42}, 1, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], GroupId{1});
}

}  // namespace
}  // namespace rgb::core
