// Snapshot bulk-join path (kSnapshot state transfer, PR4):
//  * the N=5000 join-surge divergence regression — post-drain per-ring
//    view disagreement pinned at zero for the snapshot path (and, since
//    the leader-MQ-starvation fix, for the dissemination path too: the
//    pin is the ROADMAP open item's deterministic measuring stick);
//  * dissemination/snapshot equivalence of the converged views;
//  * join-phase cost: the snapshot path must undercut per-op
//    dissemination on both events and encoded bytes;
//  * the NE-join pull path: a dynamic ring joiner receives the ring shape
//    only and pulls the member view as one framed transfer;
//  * corrupt snapshot blobs are rejected cleanly and the system converges
//    anyway.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "exp/bench.hpp"
#include "net/network.hpp"
#include "rgb/rgb.hpp"
#include "sim/simulator.hpp"
#include "wire/snapshot.hpp"

namespace rgb::core {
namespace {

/// The join phase of the scale bench at N=5000, both join modes: surge,
/// drain, measure divergence BEFORE any anti-entropy warm-up.
TEST(SnapshotJoin, JoinSurgeDivergenceRegressionAt5000) {
  exp::ScaleConfig config;
  config.members = 5000;

  config.snapshot_join = true;
  const exp::ScaleStats snapshot = exp::run_scale_trial(config, false);
  config.snapshot_join = false;
  const exp::ScaleStats dissemination = exp::run_scale_trial(config, false);

  // The measuring stick: a drained join surge must leave zero residual
  // per-ring view disagreement on the snapshot path.
  EXPECT_EQ(snapshot.join_divergence, 0u);
  // The dissemination path is held to the same bar since the
  // leader-MQ-starvation fix (leaders now queue themselves for a grant, so
  // inter-ring notifications cannot starve past the retx budget and mark
  // edges down). If this ever regresses, the snapshot pin above still
  // isolates the dissemination machinery as the culprit.
  EXPECT_EQ(dissemination.join_divergence, 0u);

  // Both reach the same converged state.
  ASSERT_TRUE(snapshot.converged);
  ASSERT_TRUE(dissemination.converged);

  // And the bulk path is the cheaper way there: fewer simulator events and
  // fewer encoded bytes for the same outcome.
  EXPECT_LT(snapshot.join_events, dissemination.join_events);
  EXPECT_LT(snapshot.join_bytes, dissemination.join_bytes);
  EXPECT_GT(snapshot.join_snapshot_msgs, 0u);
  EXPECT_EQ(dissemination.join_snapshot_msgs, 0u);
}

/// Same deterministic faulty run under both join modes: identical final
/// views at every NE (the equivalence bar the digest/full anti-entropy
/// modes are also held to).
TEST(SnapshotJoin, ModesConvergeToIdenticalViews) {
  const auto run_mode = [](bool snapshot_join) {
    common::RngStream rng{0x5AB5};
    sim::Simulator simulator;
    net::Network network{simulator, rng.fork("net")};
    RgbConfig config;
    config.probe_period = sim::msec(100);
    config.snapshot_join = snapshot_join;
    RgbSystem sys{network, config, HierarchyLayout{2, 3}};
    sys.start_probing();
    for (std::uint64_t i = 1; i <= 30; ++i) {
      sys.join(Guid{i}, sys.aps()[i % sys.aps().size()]);
    }
    simulator.run_until(sim::sec(1));
    sys.handoff(Guid{3}, sys.aps()[7]);
    sys.leave(Guid{4});
    sys.fail(Guid{5});
    simulator.run_until(sim::sec(8));
    std::vector<std::vector<proto::MemberRecord>> views;
    for (const NodeId ne : sys.all_nes()) {
      views.push_back(sys.entity(ne)->ring_members().snapshot());
    }
    EXPECT_TRUE(sys.membership_converged())
        << "snapshot_join=" << snapshot_join;
    EXPECT_EQ(sys.view_divergence(), 0u);
    return views;
  };

  const auto snapshot = run_mode(true);
  const auto dissemination = run_mode(false);
  ASSERT_EQ(snapshot.size(), dissemination.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i], dissemination[i]) << "NE index " << i;
  }
}

/// Dynamic NE join under snapshot_join: the admitting leader sends the
/// ring shape only; the joiner pulls the member view as one framed
/// kSnapshot transfer and ends up with the full table.
TEST(SnapshotJoin, NeJoinPullsOneFramedStateTransfer) {
  common::RngStream rng{0x11E};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  RgbConfig config;
  config.snapshot_join = true;
  RgbSystem sys{network, config, HierarchyLayout{1, 3}};
  for (std::uint64_t i = 1; i <= 50; ++i) {
    sys.join(Guid{i}, sys.aps()[i % sys.aps().size()]);
  }
  simulator.run();

  // A fresh NE asks the ring leader for admission.
  RgbMetrics metrics;
  obs::ProtocolObs obs;
  NetworkEntity joiner{NodeId{777}, NeRole::kAccessProxy, 0, network, config,
                       metrics, obs};
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_msgs = 0;
  network.set_tap([&](const net::Envelope& env, bool) {
    if (env.kind == kind::kSnapshot && env.dst == joiner.id()) {
      ++snapshot_msgs;
      snapshot_bytes += env.size_bytes;
    }
  });
  joiner.request_ring_join(sys.aps().front());
  simulator.run();

  EXPECT_EQ(snapshot_msgs, 1u) << "one framed transfer, not a reform dump";
  EXPECT_GT(snapshot_bytes, 0u);
  EXPECT_EQ(joiner.ring_members().size(), 50u)
      << "the pulled snapshot must hand the joiner the full view";
  EXPECT_EQ(joiner.roster().size(), 4u);
}

/// A corrupted snapshot blob is rejected cleanly (metered, no state
/// change) and the next genuine transfer still converges the receiver.
TEST(SnapshotJoin, CorruptBlobRejectedCleanly) {
  common::RngStream rng{0xBAD};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  RgbConfig config;
  config.snapshot_join = true;
  RgbSystem sys{network, config, HierarchyLayout{1, 3}};
  for (std::uint64_t i = 1; i <= 10; ++i) {
    sys.join(Guid{i}, sys.aps()[i % sys.aps().size()]);
  }
  simulator.run();

  const NodeId receiver = sys.aps()[1];
  const auto before = sys.entity(receiver)->ring_members().digest();

  // Craft a kSnapshot whose blob is bit-flipped mid-stream and whose
  // digest advertises a (fictional) different table so the receiver
  // attempts the decode.
  SnapshotMsg msg;
  rgb::wire::encode_snapshot(
      sys.entity(sys.aps()[0])->ring_members().export_entries(), msg.blob);
  msg.digest = before.hash ^ 0x1;  // force a mismatch -> decode attempt
  msg.entry_count = before.count;
  msg.blob[msg.blob.size() / 2] ^= 0x40;
  const bool maybe_valid =
      rgb::wire::decode_snapshot(msg.blob).ok();  // flip may be benign
  network.send(net::Envelope{sys.aps()[0], receiver, kind::kSnapshot,
                             wire_size(msg), msg});
  simulator.run();
  if (!maybe_valid) {
    EXPECT_EQ(sys.metrics().snapshot_decode_errors.value(), 1u);
    EXPECT_EQ(sys.entity(receiver)->ring_members().digest(), before)
        << "a rejected blob must not touch the view";
  }

  // A genuine request/response transfer still reconciles: ask the sender
  // for a snapshot (the same message a pulling joiner emits).
  const ViewDigest mine = sys.entity(receiver)->ring_members().digest();
  network.send(net::Envelope{receiver, sys.aps()[0], kind::kSnapshotRequest,
                             64, SnapshotRequestMsg{mine.hash, mine.count}});
  simulator.run();
  EXPECT_EQ(sys.view_divergence(), 0u);
}

/// Flush-edge reliability (kSnapshotAck): a snapshot push lost to a crash
/// window is retransmitted until acked, so the bulk-join phase itself —
/// not just the eventual anti-entropy probe — heals the transfer.
TEST(SnapshotJoin, FlushPushRetransmitsUntilAcked) {
  common::RngStream rng{0xACE};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  RgbConfig config;
  config.probe_period = sim::msec(100);
  config.snapshot_join = true;
  config.notify_timeout = sim::msec(200);
  RgbSystem sys{network, config, HierarchyLayout{2, 3}};
  sys.start_probing();
  for (std::uint64_t i = 1; i <= 6; ++i) {
    sys.join(Guid{i}, sys.aps()[i % sys.aps().size()]);
  }
  simulator.run_until(sim::sec(1));
  const std::uint64_t retx_before =
      sys.metrics().snapshot_retransmits.value();

  // BR 1 owes its child (the ring-1 leader) a snapshot for any change that
  // did not come from that subtree. Crash the child across the flush
  // window: the push dies in flight, and only the ack-driven retx loop —
  // not a second flush (there is none; the surge is over) — can land it.
  const NodeId child_leader = sys.rings(1)[0].front();
  sys.crash_ne(child_leader);
  sys.join(Guid{77}, sys.aps()[4]);  // ring 2: propagates up, owed down
  simulator.run_until(sim::msec(1600));
  sys.recover_ne(child_leader);
  simulator.run_until(sim::sec(6));

  EXPECT_GT(sys.metrics().snapshot_retransmits.value(), retx_before)
      << "the lost flush push must have been retried";
  EXPECT_TRUE(
      sys.entity(child_leader)->ring_members().contains(Guid{77}))
      << "the retried transfer must deliver the missed member";
  EXPECT_EQ(sys.view_divergence(), 0u);
}

}  // namespace
}  // namespace rgb::core
