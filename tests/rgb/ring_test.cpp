// Mechanics of the One-Round Token Passing Membership algorithm (Figure 3)
// on a single logical ring.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

class SingleRingTest : public RgbSystemTest {};

TEST_F(SingleRingTest, RingWiringFormsCycle) {
  auto& sys = build(1, 5);
  const auto& ring = sys.rings(0).front();
  ASSERT_EQ(ring.size(), 5u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const auto* ne = sys.entity(ring[i]);
    EXPECT_EQ(ne->next_node(), ring[(i + 1) % ring.size()]);
    EXPECT_EQ(ne->previous_node(), ring[(i + ring.size() - 1) % ring.size()]);
    EXPECT_EQ(ne->leader(), ring.front());
    EXPECT_TRUE(ne->ring_ok());
  }
  EXPECT_TRUE(sys.entity(ring.front())->is_leader());
  EXPECT_TRUE(sys.entity(ring.front())->token_parked_here());
}

TEST_F(SingleRingTest, OneJoinCostsExactlyRingSizeTokenHops) {
  auto& sys = build(1, 5);
  sys.join(common::Guid{1}, sys.aps()[2]);  // non-leader origin
  run_all();
  // r token hops; a 1-tier hierarchy has no notifications.
  EXPECT_EQ(proposal_hops(), 5u);
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(SingleRingTest, EveryNodeLearnsTheMember) {
  auto& sys = build(1, 4);
  sys.join(common::Guid{9}, sys.aps()[1]);
  run_all();
  for (const auto id : sys.aps()) {
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{9}))
        << "node " << id.value();
  }
}

TEST_F(SingleRingTest, LeaderOriginRoundAlsoOneRound) {
  auto& sys = build(1, 5);
  sys.join(common::Guid{1}, sys.aps()[0]);  // leader is the origin
  run_all();
  EXPECT_EQ(proposal_hops(), 5u);
  EXPECT_EQ(sys.metrics().rounds_completed.value(), 1u);
}

TEST_F(SingleRingTest, BatchOfOpsAtOneNodeSharesOneRound) {
  auto& sys = build(1, 5);
  // Three joins at the same AP before the token is requested: the MQ
  // aggregates them into one token round.
  sys.join(common::Guid{1}, sys.aps()[3]);
  sys.join(common::Guid{2}, sys.aps()[3]);
  sys.join(common::Guid{3}, sys.aps()[3]);
  run_all();
  EXPECT_EQ(sys.metrics().rounds_completed.value(), 1u);
  EXPECT_EQ(proposal_hops(), 5u);
  EXPECT_EQ(sys.membership().size(), 3u);
}

TEST_F(SingleRingTest, ConcurrentOriginsSerializeViaLeaderGrants) {
  auto& sys = build(1, 5);
  sys.join(common::Guid{1}, sys.aps()[1]);
  sys.join(common::Guid{2}, sys.aps()[3]);
  run_all();
  // Two distinct origins => two rounds, serialized by the leader's token.
  EXPECT_EQ(sys.metrics().rounds_completed.value(), 2u);
  EXPECT_EQ(proposal_hops(), 10u);
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(SingleRingTest, JoinThenLeaveConvergesToEmpty) {
  auto& sys = build(1, 5);
  sys.join(common::Guid{1}, sys.aps()[2]);
  run_all();
  sys.leave(common::Guid{1});
  run_all();
  EXPECT_TRUE(sys.membership().empty());
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(SingleRingTest, JoinLeaveBeforeRoundCancelsEntirely) {
  auto& sys = build(1, 5);
  // Both ops hit the same MQ in the same instant; aggregation cancels them
  // before any token is requested... except the join may already have
  // triggered a token request. Either way the final view is empty.
  sys.join(common::Guid{1}, sys.aps()[2]);
  sys.leave(common::Guid{1});
  run_all();
  EXPECT_TRUE(sys.membership().empty());
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(SingleRingTest, HandoffWithinRingUpdatesLocalLists) {
  auto& sys = build(1, 5);
  const auto ap_a = sys.aps()[1];
  const auto ap_b = sys.aps()[2];
  sys.join(common::Guid{1}, ap_a);
  run_all();
  EXPECT_EQ(sys.entity(ap_a)->local_members().size(), 1u);

  sys.handoff(common::Guid{1}, ap_b);
  run_all();
  EXPECT_EQ(sys.entity(ap_a)->local_members().size(), 0u);
  ASSERT_EQ(sys.entity(ap_b)->local_members().size(), 1u);
  EXPECT_EQ(sys.entity(ap_b)->local_members()[0].guid, common::Guid{1});
}

TEST_F(SingleRingTest, NeighborMembersTrackAdjacentAps) {
  auto& sys = build(1, 5);
  const auto& ring = sys.rings(0).front();
  sys.join(common::Guid{1}, ring[1]);
  sys.join(common::Guid{2}, ring[3]);
  run_all();
  // Node 2's neighbours are nodes 1 and 3: both members are neighbours.
  const auto neigh = sys.entity(ring[2])->neighbor_members();
  ASSERT_EQ(neigh.size(), 2u);
  // Node 0's neighbours are 4 and 1: only member 1 is a neighbour.
  const auto neigh0 = sys.entity(ring[0])->neighbor_members();
  ASSERT_EQ(neigh0.size(), 1u);
  EXPECT_EQ(neigh0[0].guid, common::Guid{1});
}

TEST_F(SingleRingTest, SingletonRingConvergesLocally) {
  auto& sys = build(1, 1);
  sys.join(common::Guid{1}, sys.aps()[0]);
  run_all();
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{1}));
  EXPECT_EQ(proposal_hops(), 0u);  // no peers to inform
}

TEST_F(SingleRingTest, TwoNodeRing) {
  auto& sys = build(1, 2);
  sys.join(common::Guid{1}, sys.aps()[1]);
  run_all();
  EXPECT_EQ(proposal_hops(), 2u);
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(SingleRingTest, RingsConsistentAfterTraffic) {
  auto& sys = build(1, 6);
  for (int i = 0; i < 10; ++i) {
    sys.join(common::Guid{static_cast<std::uint64_t>(i + 1)},
             sys.aps()[static_cast<std::size_t>(i) % 6]);
  }
  run_all();
  EXPECT_TRUE(sys.rings_consistent());
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_EQ(sys.membership().size(), 10u);
}

TEST_F(SingleRingTest, MhAckArrivesAfterRequest) {
  auto& sys = build(1, 3);
  MobileHost mh{NodeId{900001}, common::Guid{77}, common::GroupId{1},
                network_};
  mh.join_via(sys.aps()[0]);
  run_all();
  EXPECT_EQ(mh.acks_received(), 1u);
  EXPECT_EQ(mh.status(), proto::MemberStatus::kOperational);
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{77}));
}

TEST_F(SingleRingTest, MobileHostLifecycle) {
  auto& sys = build(1, 3);
  MobileHost mh{NodeId{900001}, common::Guid{77}, common::GroupId{1},
                network_};
  mh.join_via(sys.aps()[0]);
  run_all();
  mh.handoff_to(sys.aps()[1]);
  run_all();
  EXPECT_EQ(mh.current_ap(), sys.aps()[1]);
  EXPECT_EQ(sys.entity(sys.aps()[1])->local_members().size(), 1u);
  EXPECT_EQ(sys.entity(sys.aps()[0])->local_members().size(), 0u);
  mh.leave();
  run_all();
  EXPECT_EQ(mh.status(), proto::MemberStatus::kDisconnected);
  EXPECT_TRUE(sys.membership().empty());
}

TEST_F(SingleRingTest, LuidChangesPerAttachment) {
  auto& sys = build(1, 3);
  MobileHost mh{NodeId{900001}, common::Guid{77}, common::GroupId{1},
                network_};
  mh.join_via(sys.aps()[0]);
  const auto luid1 = mh.luid();
  mh.handoff_to(sys.aps()[1]);
  const auto luid2 = mh.luid();
  EXPECT_NE(luid1, luid2);  // care-of address changes with the AP
  EXPECT_EQ(mh.guid(), common::Guid{77});  // home identity does not
}

}  // namespace
}  // namespace rgb::core
