// AP-side faulty-disconnection detection: MH heartbeats, silence sweeps,
// and the interaction with handoffs and voluntary disconnection
// (paper Section 1's disconnection taxonomy).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

RgbConfig monitored_config() {
  RgbConfig config;
  config.mh_failure_timeout = sim::msec(500);
  return config;
}

class LivenessTest : public RgbSystemTest {};

TEST_F(LivenessTest, HeartbeatingMemberStaysAlive) {
  auto& sys = build(1, 3, monitored_config());
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(3000);
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{7}));
}

TEST_F(LivenessTest, SilentCrashIsDetectedAndDisseminated) {
  auto& sys = build(2, 3, monitored_config());
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(500);
  ASSERT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{7}));

  network_.crash(NodeId{900001});  // MH goes silent: faulty disconnection
  run_for_ms(3000);
  // The AP detected the silence and the failure propagated to the top.
  EXPECT_FALSE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{7}));
  EXPECT_FALSE(sys.entity(sys.rings(0).front().front())
                   ->ring_members()
                   .contains(common::Guid{7}));
}

TEST_F(LivenessTest, VoluntaryLeaveIsNotAFailure) {
  auto& sys = build(1, 3, monitored_config());
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(400);
  mh.leave();  // stops heartbeating too — must not double-report
  run_for_ms(3000);
  const auto rec = sys.entity(sys.aps()[0])->ring_members().find(common::Guid{7});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, proto::MemberStatus::kDisconnected);  // not kFailed
}

TEST_F(LivenessTest, HandoffMovesMonitoringToNewAp) {
  auto& sys = build(1, 4, monitored_config());
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(400);
  mh.handoff_to(sys.aps()[2]);
  run_for_ms(2000);
  // Still operational at the new AP: the old AP must not fail it just
  // because heartbeats stopped arriving *there*.
  const auto rec = sys.entity(sys.aps()[0])->ring_members().find(common::Guid{7});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, proto::MemberStatus::kOperational);
  EXPECT_EQ(rec->access_proxy, sys.aps()[2]);

  // Crash after the handoff: the NEW AP detects.
  network_.crash(NodeId{900001});
  run_for_ms(3000);
  EXPECT_FALSE(sys.entity(sys.aps()[1])->ring_members().contains(common::Guid{7}));
}

TEST_F(LivenessTest, FacadeMembersAreNeverSweptWithoutHeartbeats) {
  auto& sys = build(1, 3, monitored_config());
  sys.join(common::Guid{9}, sys.aps()[0]);  // no MH agent, no heartbeats
  run_for_ms(5000);
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{9}));
}

TEST_F(LivenessTest, MonitoringDisabledByDefault) {
  auto& sys = build(1, 3);  // mh_failure_timeout = 0
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(300);
  network_.crash(NodeId{900001});
  run_for_ms(5000);
  // Without monitoring the silent member is never failed automatically.
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{7}));
}

TEST_F(LivenessTest, TemporaryDisconnectionSurvivesIfShorterThanTimeout) {
  auto& sys = build(1, 3, monitored_config());
  MobileHost mh{NodeId{900001}, common::Guid{7}, common::GroupId{1},
                network_, sim::msec(100)};
  mh.join_via(sys.aps()[0]);
  run_for_ms(400);
  network_.crash(NodeId{900001});   // brief radio shadow...
  run_for_ms(200);                  // ...shorter than the 500ms timeout
  network_.recover(NodeId{900001});
  run_for_ms(2000);
  EXPECT_TRUE(sys.entity(sys.aps()[0])->ring_members().contains(common::Guid{7}));
}

}  // namespace
}  // namespace rgb::core
