// Configuration-point coverage: token cargo caps, aggregation disabled
// end-to-end, and layout arithmetic.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

class ConfigTest : public RgbSystemTest {};

TEST_F(ConfigTest, MaxOpsPerTokenSplitsBigBatches) {
  RgbConfig config;
  config.max_ops_per_token = 2;
  auto& sys = build(1, 4, config);
  for (std::uint64_t g = 1; g <= 6; ++g) {
    sys.join(common::Guid{g}, sys.aps().front());
  }
  run_all();
  EXPECT_EQ(sys.membership().size(), 6u);
  EXPECT_TRUE(sys.membership_converged());
  // 6 ops with a 2-op cargo cap need at least 3 rounds.
  EXPECT_GE(sys.metrics().rounds_completed.value(), 3u);
}

TEST_F(ConfigTest, AggregationDisabledStillConvergesEndToEnd) {
  RgbConfig config;
  config.aggregate_mq = false;
  auto& sys = build(2, 3, config);
  for (std::uint64_t g = 1; g <= 5; ++g) {
    sys.join(common::Guid{g}, sys.aps()[g % sys.aps().size()]);
  }
  run_all();
  EXPECT_EQ(sys.membership().size(), 5u);
  EXPECT_TRUE(sys.membership_converged());
  sys.leave(common::Guid{3});
  run_all();
  EXPECT_EQ(sys.membership().size(), 4u);
  EXPECT_TRUE(sys.membership_converged());
}

TEST_F(ConfigTest, LayoutArithmetic) {
  const HierarchyLayout a{.ring_tiers = 1, .ring_size = 7};
  EXPECT_EQ(a.ap_count(), 7u);
  EXPECT_EQ(a.ring_count(), 1u);
  EXPECT_EQ(a.ne_count(), 7u);

  const HierarchyLayout b{.ring_tiers = 4, .ring_size = 2};
  EXPECT_EQ(b.ap_count(), 16u);
  EXPECT_EQ(b.ring_count(), 15u);  // 1+2+4+8
  EXPECT_EQ(b.ne_count(), 30u);
}

TEST_F(ConfigTest, UpwardOnlyPropagationWithoutDissemination) {
  // TMS retention but no downward dissemination: top learns everything,
  // sibling AP rings stay ignorant of each other's members.
  RgbConfig config;
  config.retain_tier = 0;
  config.disseminate_down = false;
  auto& sys = build(2, 3, config);
  const auto ap_first = sys.aps().front();
  const auto ap_last = sys.aps().back();  // different AP ring
  sys.join(common::Guid{1}, ap_first);
  run_all();
  EXPECT_TRUE(sys.entity(sys.rings(0).front().front())
                  ->ring_members()
                  .contains(common::Guid{1}));
  EXPECT_FALSE(sys.entity(ap_last)->ring_members().contains(common::Guid{1}));
}

TEST_F(ConfigTest, MergeAcceptPathDirect) {
  // A leader receiving a MergeAccept from a singleton fragment absorbs it;
  // exercised here through the recover-merge flow with a very fast probe.
  RgbConfig config;
  config.retx_timeout = sim::msec(20);
  config.max_retx = 1;
  config.round_timeout = sim::msec(200);
  config.probe_period = sim::msec(50);
  auto& sys = build(1, 3, config);
  sys.start_probing();
  const auto& ring = sys.rings(0).front();
  sys.crash_ne(ring[2]);
  run_for_ms(1500);
  ASSERT_EQ(sys.entity(ring[0])->roster().size(), 2u);
  sys.recover_ne(ring[2]);
  run_for_ms(4000);
  EXPECT_GE(sys.metrics().merges.value(), 1u);
  EXPECT_EQ(sys.entity(ring[0])->roster().size(), 3u);
  EXPECT_EQ(sys.entity(ring[2])->roster().size(), 3u);
}

}  // namespace
}  // namespace rgb::core
