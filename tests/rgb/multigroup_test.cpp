// Multi-group serving end to end: one hierarchy multiplexing G groups.
// Membership state is per-group (directory tables/queues); the probe, token,
// stability and reconcile machinery stays shared per-link. Covers per-group
// convergence (group_view_divergence, which a merged view cannot fake),
// group-scoped queries, per-group failure handling, and the facade's
// deterministic member_groups() fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

class MultigroupTest : public RgbSystemTest {
 protected:
  static RgbConfig grouped(std::uint64_t groups, std::uint64_t per_member) {
    RgbConfig config;
    config.groups = groups;
    config.groups_per_member = per_member;
    return config;
  }

  void populate(RgbSystem& sys, std::uint64_t members) {
    for (std::uint64_t i = 0; i < members; ++i) {
      sys.join(common::Guid{i + 1}, sys.aps()[i % sys.aps().size()]);
    }
    run_all();
  }

  QueryClient::Result group_query(RgbSystem& sys, GroupId gid,
                                  proto::QueryScheme scheme) {
    QueryClient client{NodeId{990001}, network_};
    std::optional<QueryClient::Result> result;
    client.issue_group(sys.query_plan(scheme), gid, sim::sec(5),
                       [&](QueryClient::Result r) { result = std::move(r); });
    run_all();
    EXPECT_TRUE(result.has_value());
    return std::move(*result);
  }
};

TEST_F(MultigroupTest, ConvergesPerGroupAcrossTheSharedHierarchy) {
  auto& sys = build(2, 3, grouped(4, 2));
  populate(sys, 24);
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_EQ(sys.view_divergence(), 0u);
  EXPECT_EQ(sys.group_view_divergence(), 0u);

  // 24 members x 2 groups each = 48 (group, member) pairs, spread over the
  // member_groups() stride.
  EXPECT_EQ(sys.grouped_expected_membership().size(), 48u);
}

TEST_F(MultigroupTest, GroupedExpectedFollowsMemberGroupsStride) {
  auto& sys = build(2, 3, grouped(5, 2));
  populate(sys, 10);
  const auto grouped_members = sys.grouped_expected_membership();
  for (const auto& [gid, rec] : grouped_members) {
    const std::vector<GroupId> assigned = member_groups(rec.guid, sys.config());
    EXPECT_TRUE(std::find(assigned.begin(), assigned.end(), gid) !=
                assigned.end())
        << rec.guid << " reported in " << gid << " but assigned elsewhere";
  }
  // And it is (gid, guid)-sorted, the canonical oracle order.
  EXPECT_TRUE(std::is_sorted(
      grouped_members.begin(), grouped_members.end(),
      [](const auto& a, const auto& b) {
        return a.first != b.first ? a.first < b.first
                                  : a.second.guid < b.second.guid;
      }));
}

TEST_F(MultigroupTest, GroupScopedQueryReturnsOnlyThatGroup) {
  auto& sys = build(2, 3, grouped(3, 1));
  populate(sys, 12);

  // Each guid g lives in exactly group 1 + g % 3; with guids 1..12 every
  // group holds 4 members.
  std::vector<std::uint64_t> per_group(3, 0);
  for (std::uint64_t g = 1; g <= 12; ++g) per_group[g % 3] += 1;

  std::uint64_t total = 0;
  for (std::uint64_t gid = 1; gid <= 3; ++gid) {
    const auto result =
        group_query(sys, GroupId{gid}, proto::QueryScheme::kTopmost);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.members.size(), per_group[gid - 1]);
    for (const MemberRecord& rec : result.members) {
      EXPECT_EQ(1 + rec.guid.value() % 3, gid)
          << rec.guid << " leaked into group " << gid;
    }
    total += result.members.size();
  }
  EXPECT_EQ(total, 12u);

  // The group-less query still answers the merged, deduplicated view.
  QueryClient client{NodeId{990002}, network_};
  std::optional<QueryClient::Result> merged;
  client.issue(sys.query_plan(proto::QueryScheme::kTopmost), sim::sec(5),
               [&](QueryClient::Result r) { merged = std::move(r); });
  run_all();
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->members.size(), 12u);
}

TEST_F(MultigroupTest, LeaveAndFailRemoveTheMemberFromEveryGroup) {
  auto& sys = build(2, 3, grouped(4, 2));
  populate(sys, 8);
  ASSERT_EQ(sys.group_view_divergence(), 0u);

  sys.leave(common::Guid{3});
  sys.fail(common::Guid{5});
  run_all();

  EXPECT_EQ(sys.group_view_divergence(), 0u);
  // 8 members x 2 groups - 2 departed x 2 groups.
  EXPECT_EQ(sys.grouped_expected_membership().size(), 12u);
  for (const auto& [gid, rec] : sys.grouped_expected_membership()) {
    EXPECT_NE(rec.guid, common::Guid{3});
    EXPECT_NE(rec.guid, common::Guid{5});
  }
}

TEST_F(MultigroupTest, HandoffMovesTheMemberInAllItsGroups) {
  auto& sys = build(2, 3, grouped(3, 2));
  populate(sys, 6);
  const NodeId target = sys.aps().back();
  sys.handoff(common::Guid{1}, target);
  run_all();

  EXPECT_EQ(sys.group_view_divergence(), 0u);
  for (const auto& [gid, rec] : sys.grouped_expected_membership()) {
    if (rec.guid == common::Guid{1}) EXPECT_EQ(rec.access_proxy, target);
  }
}

TEST_F(MultigroupTest, SingleGroupConfigMatchesFlatSemantics) {
  // G=1 is the paper's protocol: grouped and flat oracles must agree
  // exactly (every member in GroupId{1}).
  auto& sys = build(2, 3, grouped(1, 1));
  populate(sys, 9);
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_EQ(sys.view_divergence(), 0u);
  EXPECT_EQ(sys.group_view_divergence(), 0u);
  const auto grouped_members = sys.grouped_expected_membership();
  const auto flat = sys.expected_membership();
  ASSERT_EQ(grouped_members.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(grouped_members[i].first, GroupId{1});
    EXPECT_EQ(grouped_members[i].second.guid, flat[i].guid);
  }
}

}  // namespace
}  // namespace rgb::core
