// Digest-first anti-entropy (PR3): equivalence with the full-table mode,
// the digest-collision path, steady-state traffic reduction, and replay
// determinism of the bench.scale scenario across worker-thread counts.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exp/exp.hpp"
#include "net/network.hpp"
#include "rgb/rgb.hpp"
#include "sim/simulator.hpp"

namespace rgb::core {
namespace {

/// One deterministic faulty run: joins, a loss burst, a partition of the
/// third AP ring (with a handoff originating inside the partition), heal,
/// settle. Every fault beat is scripted in virtual time, so the only
/// difference between the two executions is the anti-entropy mode.
struct ModeResult {
  std::vector<std::vector<proto::MemberRecord>> views;  ///< per NE, id order
  bool converged = false;
  bool rings_consistent = false;
};

ModeResult run_mode(bool digest) {
  common::RngStream rng{0x5EED5};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  RgbConfig config;
  // Generous retransmission budgets (as in the conformance driver): the
  // equivalence claim is about reconciliation semantics, not about
  // surviving bursts with a starved failure detector.
  config.retx_timeout = sim::msec(30);
  config.max_retx = 8;
  config.round_timeout = sim::msec(1000);
  config.notify_timeout = sim::msec(300);
  config.max_notify_retx = 12;
  config.probe_period = sim::msec(100);
  config.digest_anti_entropy = digest;
  RgbSystem sys{network, config, HierarchyLayout{2, 3}};
  sys.start_probing();

  const auto& aps = sys.aps();  // 9 APs: nodes 4..12
  for (std::uint64_t i = 0; i < 6; ++i) {
    sys.join(Guid{i + 1}, aps[i % aps.size()]);
  }
  simulator.run_until(sim::sec(1));

  // Loss burst: 40% drop on every link for 1.5s, with a handoff inside.
  network.set_default_drop_probability(0.4);
  sys.handoff(Guid{1}, aps[4]);
  simulator.run_until(sim::msec(2500));
  network.set_default_drop_probability(0.0);

  // Partition the third AP ring (nodes 10..12) away; a handoff lands on a
  // partitioned AP, so its op is stuck until heal.
  for (const std::uint64_t node : {10, 11, 12}) {
    network.set_partition(NodeId{node}, 1);
  }
  sys.handoff(Guid{2}, aps[6]);  // node 10, inside the partition
  simulator.run_until(sim::sec(4));
  network.clear_partitions();

  // Settle: periodic probing keeps the event queue alive forever, so run
  // to a fixed horizon instead of draining.
  simulator.run_until(sim::sec(30));

  ModeResult result;
  for (const NodeId ne : sys.all_nes()) {
    result.views.push_back(sys.entity(ne)->ring_members().snapshot());
  }
  result.converged = sys.membership_converged();
  result.rings_consistent = sys.rings_consistent();
  return result;
}

TEST(ViewSyncEquivalence, DigestAndFullModesConvergeIdentically) {
  const ModeResult digest = run_mode(true);
  const ModeResult full = run_mode(false);

  ASSERT_TRUE(digest.converged) << "digest mode failed to converge";
  ASSERT_TRUE(full.converged) << "full-table mode failed to converge";
  EXPECT_TRUE(digest.rings_consistent);
  EXPECT_TRUE(full.rings_consistent);

  // Same member tables at every NE, byte for byte.
  ASSERT_EQ(digest.views.size(), full.views.size());
  for (std::size_t i = 0; i < digest.views.size(); ++i) {
    EXPECT_EQ(digest.views[i], full.views[i]) << "NE index " << i;
  }
  // And all NEs agree with each other (TMS + downward dissemination).
  for (std::size_t i = 1; i < digest.views.size(); ++i) {
    EXPECT_EQ(digest.views[i], digest.views[0]) << "NE index " << i;
  }
}

// --- digest-collision path ---------------------------------------------------

/// Crafts a kDigest message that spoofs the receiver's own digest (the
/// observable effect of a 2^-64 hash collision between differing tables):
/// the receiver must treat it as in-sync — no reply, no state change — and
/// the next genuine (non-colliding) sync must reconcile as usual.
TEST(ViewSyncCollision, CollidingDigestIsBenignAndNextTickHeals) {
  common::RngStream rng{0xC0111DE};
  sim::Simulator simulator;
  net::Network network{simulator, rng.fork("net")};
  RgbConfig config;  // probing off: every sync below is hand-delivered
  config.digest_anti_entropy = true;
  RgbSystem sys{network, config, HierarchyLayout{1, 3}};

  sys.join(Guid{1}, sys.aps()[0]);
  simulator.run();
  const NodeId receiver = sys.aps()[1];
  const NetworkEntity* entity = sys.entity(receiver);
  // The receiver compares the *combined* (gid-mixed) directory digest, so
  // that is what a collision has to spoof.
  const ViewDigest before = entity->directory().combined_digest();
  ASSERT_GT(before.count, 0u);

  const auto viewsync_sends = [&] {
    return network.metrics().sent_of(kind::kViewSync);
  };

  // A "collision": the sender's (fictional, different) table happens to
  // hash to the receiver's own digest. Cross-ring style: no roster, so no
  // ring-shape adoption interferes.
  ViewSyncMsg colliding;
  colliding.phase = ViewSyncMsg::Phase::kDigest;
  colliding.digest = before.hash;
  colliding.entry_count = static_cast<std::uint32_t>(before.count);
  const std::uint64_t sends_before = viewsync_sends();
  network.send(net::Envelope{sys.aps()[2], receiver, kind::kViewSync,
                             wire_size(colliding), colliding});
  simulator.run();
  EXPECT_EQ(viewsync_sends(), sends_before + 1)  // ours; no reply sent
      << "a matching digest must not trigger reconciliation";
  EXPECT_EQ(entity->directory().combined_digest(), before)
      << "no state change";

  // The genuine mismatch path: a digest that does not match provokes the
  // full-table reply that reconciliation rides on.
  ViewSyncMsg mismatching = colliding;
  mismatching.digest ^= 1;
  network.send(net::Envelope{sys.aps()[2], receiver, kind::kViewSync,
                             wire_size(mismatching), mismatching});
  simulator.run();
  EXPECT_GE(viewsync_sends(), sends_before + 3)  // ours + the kFull reply
      << "a digest mismatch must provoke a reconciliation reply";
}

// --- steady-state traffic ----------------------------------------------------

TEST(ViewSyncTraffic, DigestCutsSteadyStateBytesTenfoldAt1000Members) {
  // The PR3 acceptance number, pinned as a regression test: at N >= 1000
  // the steady-state kViewSync bytes of digest mode are >= 10x below
  // full-table mode (measured over the same 10-tick window; both runs
  // must actually converge for the window to be steady state).
  exp::ScaleConfig config;
  config.members = 1000;
  config.digest = true;
  const exp::ScaleStats digest = exp::run_scale_trial(config, false);
  config.digest = false;
  const exp::ScaleStats full = exp::run_scale_trial(config, false);

  ASSERT_TRUE(digest.converged);
  ASSERT_TRUE(full.converged);
  ASSERT_GT(digest.viewsync_msgs, 0u);
  EXPECT_GE(full.viewsync_bytes, 10 * digest.viewsync_bytes)
      << "digest=" << digest.viewsync_bytes
      << " full=" << full.viewsync_bytes;
  // In steady state the digest never mismatches, so the message count is
  // identical — the reduction is pure payload, not lost coverage.
  EXPECT_EQ(digest.viewsync_msgs, full.viewsync_msgs);
}

// --- bench.scale determinism -------------------------------------------------

TEST(BenchScaleScenario, ReplayDeterministicAcross1And8Threads) {
  const exp::Scenario* registered = exp::builtin_scenarios().find("bench.scale");
  ASSERT_NE(registered, nullptr);
  // Trim to the small cells: this asserts the determinism contract, not
  // the sweep depth (the full sweep runs in bench mode / CI smoke).
  exp::Scenario scenario = *registered;
  scenario.cells.resize(2);  // members=250, digest in {1, 0}

  const auto csv_with = [&](unsigned threads) {
    exp::RunnerOptions options;
    options.threads = threads;
    options.base_seed = 7;
    const exp::RunResult result = exp::TrialRunner{options}.run(scenario);
    std::ostringstream csv;
    exp::write_csv(result, csv);
    return csv.str();
  };
  const std::string csv1 = csv_with(1);
  EXPECT_EQ(csv1, csv_with(8));
}

}  // namespace
}  // namespace rgb::core
