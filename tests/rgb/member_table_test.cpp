#include "rgb/member_table.hpp"

#include <gtest/gtest.h>

namespace rgb::core {
namespace {

MembershipOp op(OpKind kind, std::uint64_t seq, std::uint64_t guid,
                std::uint64_t ap, std::uint64_t old_ap = 0) {
  MembershipOp o;
  o.kind = kind;
  o.seq = seq;
  o.member = MemberRecord{Guid{guid}, NodeId{ap},
                          proto::MemberStatus::kOperational};
  if (old_ap != 0) o.old_ap = NodeId{old_ap};
  return o;
}

TEST(MemberTable, JoinInsertsOperationalRecord) {
  MemberTable t;
  EXPECT_TRUE(t.apply(op(OpKind::kMemberJoin, 1, 10, 100)));
  EXPECT_TRUE(t.contains(Guid{10}));
  const auto rec = t.find(Guid{10});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->access_proxy, NodeId{100});
  EXPECT_EQ(rec->status, proto::MemberStatus::kOperational);
}

TEST(MemberTable, LeaveMarksDisconnected) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  EXPECT_TRUE(t.apply(op(OpKind::kMemberLeave, 2, 10, 100)));
  EXPECT_FALSE(t.contains(Guid{10}));
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(MemberTable, FailMarksFailed) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  t.apply(op(OpKind::kMemberFail, 2, 10, 100));
  EXPECT_FALSE(t.contains(Guid{10}));
  EXPECT_EQ(t.find(Guid{10})->status, proto::MemberStatus::kFailed);
}

TEST(MemberTable, HandoffMovesAp) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  t.apply(op(OpKind::kMemberHandoff, 2, 10, 200, 100));
  EXPECT_EQ(t.find(Guid{10})->access_proxy, NodeId{200});
  EXPECT_TRUE(t.contains(Guid{10}));
}

TEST(MemberTable, DuplicateApplyIsIdempotent) {
  MemberTable t;
  const auto join = op(OpKind::kMemberJoin, 5, 10, 100);
  EXPECT_TRUE(t.apply(join));
  EXPECT_FALSE(t.apply(join));  // same seq: no change
  EXPECT_EQ(t.size(), 1u);
}

TEST(MemberTable, StaleOpIsRejected) {
  MemberTable t;
  t.apply(op(OpKind::kMemberHandoff, 10, 7, 300, 200));
  // A retransmitted older join must not roll the member back.
  EXPECT_FALSE(t.apply(op(OpKind::kMemberJoin, 4, 7, 100)));
  EXPECT_EQ(t.find(Guid{7})->access_proxy, NodeId{300});
}

TEST(MemberTable, OutOfOrderHandoffChainResolvesToNewest) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  // Deliveries may reorder across rings; highest seq must win.
  t.apply(op(OpKind::kMemberHandoff, 9, 7, 400, 300));
  t.apply(op(OpKind::kMemberHandoff, 5, 7, 300, 100));
  EXPECT_EQ(t.find(Guid{7})->access_proxy, NodeId{400});
}

TEST(MemberTable, SnapshotSortedByGuidAndOperationalOnly) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 30, 100));
  t.apply(op(OpKind::kMemberJoin, 2, 10, 100));
  t.apply(op(OpKind::kMemberJoin, 3, 20, 100));
  t.apply(op(OpKind::kMemberLeave, 4, 20, 100));
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].guid, Guid{10});
  EXPECT_EQ(snap[1].guid, Guid{30});
}

TEST(MemberTable, MembersAtFiltersByAp) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 1, 100));
  t.apply(op(OpKind::kMemberJoin, 2, 2, 200));
  t.apply(op(OpKind::kMemberJoin, 3, 3, 100));
  const auto at100 = t.members_at(NodeId{100});
  ASSERT_EQ(at100.size(), 2u);
  EXPECT_EQ(at100[0].guid, Guid{1});
  EXPECT_EQ(at100[1].guid, Guid{3});
  EXPECT_EQ(t.members_at(NodeId{999}).size(), 0u);
}

TEST(MemberTable, NeOpsAreIgnored) {
  MemberTable t;
  MembershipOp ne;
  ne.kind = OpKind::kNeFail;
  ne.seq = 1;
  ne.ne = NodeId{5};
  EXPECT_FALSE(t.apply(ne));
  EXPECT_EQ(t.size(), 0u);
}

TEST(MemberTable, MergeAdoptsNewerRecords) {
  MemberTable a, b;
  a.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  b.apply(op(OpKind::kMemberHandoff, 5, 7, 200, 100));
  b.apply(op(OpKind::kMemberJoin, 2, 8, 300));
  a.merge(b);
  EXPECT_EQ(a.find(Guid{7})->access_proxy, NodeId{200});
  EXPECT_TRUE(a.contains(Guid{8}));
}

TEST(MemberTable, MergeKeepsOwnNewerRecords) {
  MemberTable a, b;
  a.apply(op(OpKind::kMemberHandoff, 9, 7, 500, 100));
  b.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  a.merge(b);
  EXPECT_EQ(a.find(Guid{7})->access_proxy, NodeId{500});
}

TEST(MemberTable, EqualityComparesOperationalView) {
  MemberTable a, b;
  a.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  b.apply(op(OpKind::kMemberJoin, 2, 7, 100));  // different seq, same view
  EXPECT_TRUE(a == b);
  b.apply(op(OpKind::kMemberJoin, 3, 8, 100));
  EXPECT_FALSE(a == b);
}

TEST(MemberTable, RejoinAfterLeaveWithHigherSeq) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  t.apply(op(OpKind::kMemberLeave, 2, 7, 100));
  EXPECT_TRUE(t.apply(op(OpKind::kMemberJoin, 3, 7, 200)));
  EXPECT_TRUE(t.contains(Guid{7}));
  EXPECT_EQ(t.find(Guid{7})->access_proxy, NodeId{200});
}

TEST(MemberTable, UpsertAndRemoveBypassSequencing) {
  MemberTable t;
  t.upsert(MemberRecord{Guid{1}, NodeId{9}, proto::MemberStatus::kOperational});
  EXPECT_TRUE(t.contains(Guid{1}));
  t.remove(Guid{1});
  EXPECT_FALSE(t.contains(Guid{1}));
  EXPECT_FALSE(t.find(Guid{1}).has_value());
}

TEST(MemberTable, ClearEmptiesEverything) {
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 7, 100));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

// --- anti-entropy digest (PR3) ----------------------------------------------

TEST(MemberTableDigest, EmptyTableDigestIsZeroCount) {
  MemberTable t;
  EXPECT_EQ(t.digest().count, 0u);
}

TEST(MemberTableDigest, OrderIndependent) {
  // The digest is an xor-accumulation, so any application order of the
  // same final entries must agree — that is what lets two NEs compare
  // views without exporting and sorting them.
  MemberTable a, b;
  a.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  a.apply(op(OpKind::kMemberJoin, 2, 20, 101));
  a.apply(op(OpKind::kMemberJoin, 3, 30, 102));
  b.apply(op(OpKind::kMemberJoin, 3, 30, 102));
  b.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  b.apply(op(OpKind::kMemberJoin, 2, 20, 101));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(MemberTableDigest, SensitiveToSeqStatusApAndCount) {
  MemberTable base;
  base.apply(op(OpKind::kMemberJoin, 1, 10, 100));

  MemberTable newer_seq;  // same record, newer seq
  newer_seq.apply(op(OpKind::kMemberJoin, 5, 10, 100));
  EXPECT_NE(base.digest().hash, newer_seq.digest().hash);

  MemberTable other_ap;
  other_ap.apply(op(OpKind::kMemberJoin, 1, 10, 101));
  EXPECT_NE(base.digest().hash, other_ap.digest().hash);

  MemberTable failed;
  failed.apply(op(OpKind::kMemberFail, 1, 10, 100));
  EXPECT_NE(base.digest().hash, failed.digest().hash);

  MemberTable more;
  more.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  more.apply(op(OpKind::kMemberJoin, 2, 20, 100));
  EXPECT_NE(base.digest(), more.digest());
  EXPECT_EQ(more.digest().count, 2u);
}

TEST(MemberTableDigest, IncrementalMaintenanceMatchesRebuild) {
  // Every mutation path — apply (insert + overwrite), import, merge,
  // upsert, remove — must leave the incrementally-maintained digest equal
  // to a from-scratch import of the same entries.
  MemberTable t;
  t.apply(op(OpKind::kMemberJoin, 1, 10, 100));
  t.apply(op(OpKind::kMemberJoin, 2, 20, 101));
  t.apply(op(OpKind::kMemberHandoff, 3, 10, 102));  // overwrite
  t.apply(op(OpKind::kMemberFail, 4, 20, 101));     // overwrite
  t.apply(op(OpKind::kMemberFail, 1, 20, 101));     // stale: no-op

  MemberTable other;
  other.apply(op(OpKind::kMemberJoin, 9, 30, 103));
  other.apply(op(OpKind::kMemberJoin, 8, 10, 104));  // newer than t's
  t.merge(other);
  t.import_entries(other.export_entries());  // idempotent second pass
  t.upsert(proto::MemberRecord{Guid{40}, NodeId{105},
                               proto::MemberStatus::kOperational});
  t.remove(Guid{20});

  MemberTable rebuilt;
  rebuilt.import_entries(t.export_entries());
  EXPECT_EQ(t.digest(), rebuilt.digest());
  EXPECT_EQ(t.digest().count, t.size());

  t.clear();
  EXPECT_EQ(t.digest(), MemberTable{}.digest());
}

// ---------------------------------------------------------------------------
// Attachment-epoch (claim_seq) lattice: records order by (claim, seq)
// lexicographically — a newer physical attachment epoch beats anything
// derived from an older one regardless of raw seq, which is what makes
// cross-partition false-failure records and repair re-assertions unable to
// shadow a legitimate handoff.
// ---------------------------------------------------------------------------

MembershipOp epoch_op(OpKind kind, std::uint64_t seq, std::uint64_t claim,
                      std::uint64_t guid, std::uint64_t ap) {
  MembershipOp o = op(kind, seq, guid, ap);
  o.claim_seq = claim;
  return o;
}

TEST(MemberTableLattice, NewerEpochBeatsFresherSeqOfOlderEpoch) {
  // join@100 (epoch 10) -> detector false-fail with a very fresh seq
  // (epoch 10) -> the real handoff@200 (epoch 20, seq 20) that raced it.
  MemberTable t;
  t.apply(epoch_op(OpKind::kMemberJoin, 10, 10, 1, 100));
  t.apply(epoch_op(OpKind::kMemberFail, 1000, 10, 1, 100));
  EXPECT_EQ(t.find(Guid{1})->status, proto::MemberStatus::kFailed);
  // The handoff's seq (20) is far below the false-fail's (1000), yet its
  // newer epoch wins: the attachment can never be shadowed.
  EXPECT_TRUE(t.apply(epoch_op(OpKind::kMemberHandoff, 20, 20, 1, 200)));
  EXPECT_EQ(t.find(Guid{1})->access_proxy, NodeId{200});
  EXPECT_EQ(t.claim_of(Guid{1}), 20u);
  // And the old epoch's records are now inert, whatever their seq.
  EXPECT_FALSE(t.apply(epoch_op(OpKind::kMemberJoin, 5000, 10, 1, 100)));
  EXPECT_EQ(t.find(Guid{1})->access_proxy, NodeId{200});
}

TEST(MemberTableLattice, ReanchorWinsWithinItsEpochOnly) {
  // False accusation of epoch 10 (seq 50), re-anchored by the host with a
  // fresh seq in the SAME epoch: wins against the accusation...
  MemberTable t;
  t.apply(epoch_op(OpKind::kMemberJoin, 10, 10, 1, 100));
  t.apply(epoch_op(OpKind::kMemberFail, 50, 10, 1, 100));
  EXPECT_TRUE(t.apply(epoch_op(OpKind::kMemberJoin, 60, 10, 1, 100)));
  EXPECT_TRUE(t.contains(Guid{1}));
  // ...but loses to any newer epoch, even one with a lower raw seq — the
  // repair can never override an attachment it raced with.
  EXPECT_TRUE(t.apply(epoch_op(OpKind::kMemberHandoff, 55, 55, 1, 200)));
  EXPECT_FALSE(t.apply(epoch_op(OpKind::kMemberJoin, 70, 10, 1, 100)));
  EXPECT_EQ(t.find(Guid{1})->access_proxy, NodeId{200});
}

TEST(MemberTableLattice, ImportAndMergeAndDiffUseLatticeOrder) {
  MemberTable a, b;
  a.apply(epoch_op(OpKind::kMemberJoin, 10, 10, 1, 100));
  a.apply(epoch_op(OpKind::kMemberFail, 900, 10, 1, 100));  // false fail
  b.apply(epoch_op(OpKind::kMemberHandoff, 20, 20, 1, 200));
  // Import in both directions: the newer epoch wins on both sides.
  MemberTable a2;
  a2.import_entries(a.export_entries());
  EXPECT_TRUE(a2.import_entries(b.export_entries()));
  EXPECT_EQ(a2.find(Guid{1})->access_proxy, NodeId{200});
  EXPECT_FALSE(b.import_entries(a.export_entries()));
  EXPECT_EQ(b.find(Guid{1})->access_proxy, NodeId{200});
  // newer_than: a's false-fail record is NOT newer than b's entry, so the
  // diff b would send back for a's entries contains b's record.
  const auto diff = b.newer_than(a.export_entries());
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].claim_seq, 20u);
  // merge follows the same order.
  a.merge(b);
  EXPECT_EQ(a.find(Guid{1})->access_proxy, NodeId{200});
}

TEST(MemberTableLattice, ClaimChangesFlipTheDigest) {
  MemberTable a, b;
  a.apply(epoch_op(OpKind::kMemberJoin, 10, 10, 1, 100));
  b.apply(epoch_op(OpKind::kMemberJoin, 10, 9, 1, 100));
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(
      MemberTable::entry_hash(
          MemberRecord{Guid{1}, NodeId{100}, proto::MemberStatus::kOperational},
          10, 10),
      MemberTable::entry_hash(
          MemberRecord{Guid{1}, NodeId{100}, proto::MemberStatus::kOperational},
          10, 9));
}

TEST(MemberTableDigest, EqualTablesAgreeDifferingTablesDiverge) {
  MemberTable a, b;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    a.apply(op(OpKind::kMemberJoin, i, i, 100 + (i % 5)));
    b.apply(op(OpKind::kMemberJoin, i, i, 100 + (i % 5)));
  }
  EXPECT_EQ(a.digest(), b.digest());
  b.apply(op(OpKind::kMemberHandoff, 99, 25, 104));
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace rgb::core
