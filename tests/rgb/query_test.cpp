// The Membership-Query algorithm (Section 4.4) over the three maintenance
// schemes, including cost characteristics and timeout behaviour.
#include <gtest/gtest.h>

#include <optional>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

class QueryTest : public RgbSystemTest {
 protected:
  /// Issues a query and runs the simulation until it resolves.
  QueryClient::Result query(RgbSystem& sys, proto::QueryScheme scheme,
                            sim::Duration timeout = sim::sec(5)) {
    QueryClient client{NodeId{990001}, network_};
    std::optional<QueryClient::Result> result;
    client.issue(sys.query_plan(scheme), timeout,
                 [&](QueryClient::Result r) { result = std::move(r); });
    run_all();
    EXPECT_TRUE(result.has_value());
    return std::move(*result);
  }

  void populate(RgbSystem& sys, int members) {
    for (int i = 0; i < members; ++i) {
      sys.join(common::Guid{static_cast<std::uint64_t>(i + 1)},
               sys.aps()[static_cast<std::size_t>(i) % sys.aps().size()]);
    }
    run_all();
  }
};

TEST_F(QueryTest, TmsReturnsFullMembershipWithTwoMessages) {
  auto& sys = build(3, 3);
  populate(sys, 12);
  const auto result = query(sys, proto::QueryScheme::kTopmost);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.members.size(), 12u);
  EXPECT_EQ(result.messages, 2u);  // one request, one reply
  EXPECT_EQ(result.targets, 1u);
}

TEST_F(QueryTest, BmsReturnsFullMembershipViaFanOut) {
  RgbConfig config;
  config.retain_tier = 2;  // BMS: only AP rings hold membership
  config.disseminate_down = false;
  auto& sys = build(3, 3, config);
  populate(sys, 12);
  const auto result = query(sys, proto::QueryScheme::kBottommost);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.members.size(), 12u);
  EXPECT_EQ(result.targets, 9u);       // r^2 AP-ring leaders
  EXPECT_EQ(result.messages, 18u);     // request+reply per target
}

TEST_F(QueryTest, ImsFansOutToIntermediateTier) {
  RgbConfig config;
  config.retain_tier = 1;
  config.disseminate_down = false;
  auto& sys = build(3, 3, config);
  populate(sys, 9);
  const auto result = query(sys, proto::QueryScheme::kIntermediate);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.members.size(), 9u);
  EXPECT_EQ(result.targets, 3u);  // r AG rings
  EXPECT_EQ(result.messages, 6u);
}

TEST_F(QueryTest, TmsQueryIsCheaperThanBms) {
  auto& sys = build(3, 3);
  populate(sys, 6);
  const auto tms = query(sys, proto::QueryScheme::kTopmost);
  const auto bms = query(sys, proto::QueryScheme::kBottommost);
  // The paper's §4.4 claim: TMS queries are more efficient for the
  // requesting application.
  EXPECT_LT(tms.messages, bms.messages);
  EXPECT_LE(tms.latency, bms.latency);
  // Under full TMS maintenance both return the same membership.
  EXPECT_EQ(tms.members.size(), bms.members.size());
}

TEST_F(QueryTest, EmptyGroupQueryCompletes) {
  auto& sys = build(2, 3);
  const auto result = query(sys, proto::QueryScheme::kTopmost);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.members.empty());
}

TEST_F(QueryTest, QueryTimesOutWhenTargetCrashed) {
  auto& sys = build(2, 3);
  populate(sys, 3);
  const auto plan = sys.query_plan(proto::QueryScheme::kTopmost);
  sys.crash_ne(plan.targets.front());

  QueryClient client{NodeId{990001}, network_};
  std::optional<QueryClient::Result> result;
  client.issue(plan, sim::msec(500),
               [&](QueryClient::Result r) { result = std::move(r); });
  run_all();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->replies, 0u);
  EXPECT_EQ(result->latency, sim::msec(500));
}

TEST_F(QueryTest, PartialRepliesStillUnionMembers) {
  RgbConfig config;
  config.retain_tier = 2;
  config.disseminate_down = false;
  auto& sys = build(2, 3);  // 2-tier: BMS targets are the 3 AP-ring leaders
  populate(sys, 6);
  auto plan = sys.query_plan(proto::QueryScheme::kBottommost);
  ASSERT_EQ(plan.targets.size(), 3u);
  sys.crash_ne(plan.targets[1]);

  QueryClient client{NodeId{990001}, network_};
  std::optional<QueryClient::Result> result;
  client.issue(plan, sim::msec(300),
               [&](QueryClient::Result r) { result = std::move(r); });
  run_all();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->replies, 2u);
  // Under TMS-dissemination every AP ring holds the global view, so even a
  // partial fan-in covers all members.
  EXPECT_EQ(result->members.size(), 6u);
}

TEST_F(QueryTest, SequentialQueriesOnOneClient) {
  auto& sys = build(2, 3);
  populate(sys, 4);
  const auto first = query(sys, proto::QueryScheme::kTopmost);
  const auto second = query(sys, proto::QueryScheme::kTopmost);
  EXPECT_TRUE(first.complete);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(first.members.size(), second.members.size());
}

TEST_F(QueryTest, QueryReflectsHandoffs) {
  auto& sys = build(2, 3);
  sys.join(common::Guid{1}, sys.aps().front());
  run_all();
  sys.handoff(common::Guid{1}, sys.aps().back());
  run_all();
  const auto result = query(sys, proto::QueryScheme::kTopmost);
  ASSERT_EQ(result.members.size(), 1u);
  EXPECT_EQ(result.members[0].access_proxy, sys.aps().back());
}

}  // namespace
}  // namespace rgb::core
