// Fault tolerance: token retransmission, local repair by exclusion
// (Section 5.2), leader failover, holder crash, member-failure generation,
// and the partition/merge extension (the paper's future work).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

/// Config tuned for fast failure detection in tests.
RgbConfig fast_failure_config() {
  RgbConfig config;
  config.retx_timeout = sim::msec(20);
  config.max_retx = 1;
  config.round_timeout = sim::msec(300);
  config.notify_timeout = sim::msec(200);
  config.probe_period = sim::msec(100);
  return config;
}

class FailureTest : public RgbSystemTest {};

TEST_F(FailureTest, CrashedNonLeaderIsSplicedOut) {
  auto& sys = build(1, 5, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.crash_ne(ring[2]);
  run_for_ms(2000);
  // Probe rounds hit the dead node, retransmit, then repair around it.
  EXPECT_GE(sys.metrics().repairs.value(), 1u);
  for (const auto id : ring) {
    if (id == ring[2]) continue;
    const auto* ne = sys.entity(id);
    EXPECT_EQ(ne->roster().size(), 4u) << "node " << id.value();
    EXPECT_NE(ne->next_node(), ring[2]);
  }
  // The repaired ring still disseminates.
  sys.join(common::Guid{1}, ring[1]);
  run_for_ms(1000);
  EXPECT_TRUE(sys.entity(ring[4])->ring_members().contains(common::Guid{1}));
}

TEST_F(FailureTest, TokenRetransmitsBeforeDeclaringFault) {
  auto& sys = build(1, 5, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.crash_ne(ring[2]);
  sys.join(common::Guid{1}, ring[1]);  // round will hit the dead successor
  run_for_ms(2000);
  EXPECT_GE(sys.metrics().token_retransmits.value(), 1u);
  EXPECT_GE(sys.metrics().repairs.value(), 1u);
  // The join still reached the survivors.
  for (const auto id : {ring[0], ring[1], ring[3], ring[4]}) {
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}));
  }
}

TEST_F(FailureTest, LeaderCrashTriggersFailover) {
  auto& sys = build(1, 5, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.crash_ne(ring[0]);  // the leader
  // A member with pending ops detects the dead leader via request timeouts.
  sys.join(common::Guid{1}, ring[3]);
  run_for_ms(4000);
  EXPECT_GE(sys.metrics().leader_failovers.value(), 1u);
  // Deterministic rule: lowest alive id leads.
  for (const auto id : {ring[1], ring[2], ring[3], ring[4]}) {
    EXPECT_EQ(sys.entity(id)->leader(), ring[1]) << "node " << id.value();
  }
  // The join disseminated despite the failover.
  for (const auto id : {ring[1], ring[2], ring[3], ring[4]}) {
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}));
  }
}

TEST_F(FailureTest, ApCrashFailsItsAttachedMembers) {
  auto& sys = build(1, 5, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.join(common::Guid{1}, ring[2]);
  sys.join(common::Guid{2}, ring[3]);
  run_for_ms(500);
  sys.crash_ne(ring[2]);
  run_for_ms(3000);
  // The repairer generated Member-Failure for the stranded member.
  for (const auto id : {ring[0], ring[1], ring[3], ring[4]}) {
    const auto* ne = sys.entity(id);
    EXPECT_FALSE(ne->ring_members().contains(common::Guid{1}))
        << "node " << id.value();
    EXPECT_TRUE(ne->ring_members().contains(common::Guid{2}));
  }
}

TEST_F(FailureTest, HierarchyPropagationSurvivesApRingFault) {
  auto& sys = build(3, 3, fast_failure_config());
  sys.start_probing();
  const auto& ap_ring = sys.rings(2).front();
  sys.crash_ne(ap_ring[1]);  // non-leader AP
  run_for_ms(2000);          // probes repair the AP ring
  sys.join(common::Guid{1}, ap_ring[2]);
  run_for_ms(3000);
  // The change still reaches the top despite the faulty AP.
  EXPECT_TRUE(sys.entity(sys.rings(0).front().front())
                  ->ring_members()
                  .contains(common::Guid{1}));
}

TEST_F(FailureTest, NotificationRetransmitsUntilAcked) {
  // Lossy links between rings: notifications must survive via retx.
  net::LinkConfig lossy;
  lossy.latency = net::LatencyModel::fixed(sim::msec(1));
  lossy.drop_probability = 0.4;

  sim::Simulator sim;
  net::Network lossy_net{sim, common::RngStream{7}, lossy};
  RgbConfig config = fast_failure_config();
  config.notify_timeout = sim::msec(100);
  config.max_notify_retx = 30;
  config.max_retx = 30;  // token hops also need retx under loss
  RgbSystem sys{lossy_net, config,
                HierarchyLayout{.ring_tiers = 2, .ring_size = 3}};
  sys.join(common::Guid{1}, sys.aps().front());
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(sys.entity(sys.rings(0).front().front())
                  ->ring_members()
                  .contains(common::Guid{1}));
}

TEST_F(FailureTest, HolderCrashMidRoundIsReclaimedByWatchdog) {
  auto& sys = build(1, 5, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  // Give node 3 the token by starting its round, then crash it immediately:
  // the leader's watchdog must free the token for others.
  sys.join(common::Guid{1}, ring[3]);
  run_for_ms(1);  // request is in flight
  sys.crash_ne(ring[3]);
  run_for_ms(3000);
  // Ring recovered and other traffic flows.
  sys.join(common::Guid{2}, ring[1]);
  run_for_ms(2000);
  EXPECT_TRUE(sys.entity(ring[0])->ring_members().contains(common::Guid{2}));
}

TEST_F(FailureTest, RecoveredNodeRejoinsViaMerge) {
  auto& sys = build(1, 4, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.crash_ne(ring[2]);
  run_for_ms(2000);
  EXPECT_EQ(sys.entity(ring[0])->roster().size(), 3u);

  sys.recover_ne(ring[2]);
  run_for_ms(5000);
  // The leader's merge probing re-adopts the recovered node.
  EXPECT_GE(sys.metrics().merges.value(), 1u);
  for (const auto id : ring) {
    EXPECT_EQ(sys.entity(id)->roster().size(), 4u) << "node " << id.value();
  }
  // And the merged ring disseminates again.
  sys.join(common::Guid{1}, ring[2]);
  run_for_ms(2000);
  EXPECT_TRUE(sys.entity(ring[0])->ring_members().contains(common::Guid{1}));
}

TEST_F(FailureTest, NetworkPartitionSplitsAndMergesRing) {
  auto& sys = build(1, 4, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  // Partition nodes {0,1} from {2,3}.
  network_.set_partition(ring[0], 1);
  network_.set_partition(ring[1], 1);
  network_.set_partition(ring[2], 2);
  network_.set_partition(ring[3], 2);
  // Side A (with the probing leader) detects the cut on its own; side B has
  // no leader, so detection needs traffic — the join provides it.
  sys.join(common::Guid{1}, ring[0]);
  sys.join(common::Guid{2}, ring[2]);
  run_for_ms(6000);
  // Each side repaired itself into a fragment.
  EXPECT_LE(sys.entity(ring[0])->roster().size(), 2u);
  EXPECT_LE(sys.entity(ring[2])->roster().size(), 2u);
  run_for_ms(2000);
  EXPECT_TRUE(sys.entity(ring[1])->ring_members().contains(common::Guid{1}));
  EXPECT_TRUE(sys.entity(ring[3])->ring_members().contains(common::Guid{2}));

  // Heal the partition: merge probing reunites the fragments and the
  // member views union.
  network_.clear_partitions();
  run_for_ms(8000);
  EXPECT_GE(sys.metrics().merges.value(), 1u);
  for (const auto id : ring) {
    const auto* ne = sys.entity(id);
    EXPECT_EQ(ne->roster().size(), 4u) << "node " << id.value();
    EXPECT_TRUE(ne->ring_members().contains(common::Guid{1}));
    EXPECT_TRUE(ne->ring_members().contains(common::Guid{2}));
  }
}

TEST_F(FailureTest, RingOkReflectsProbeActivity) {
  auto& sys = build(1, 3, fast_failure_config());
  sys.start_probing();
  run_for_ms(500);
  for (const auto id : sys.rings(0).front()) {
    EXPECT_TRUE(sys.entity(id)->ring_ok());
  }
  EXPECT_GE(sys.metrics().empty_probe_rounds.value(), 1u);
}

TEST_F(FailureTest, CrashedNodeSendsAndReceivesNothing) {
  auto& sys = build(1, 3, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.crash_ne(ring[1]);
  const auto sent_before = network_.metrics().sent;
  sys.join(common::Guid{1}, ring[1]);  // injected at a crashed AP
  run_for_ms(500);
  // The crashed AP cannot even send its token request.
  EXPECT_EQ(network_.metrics().sent, sent_before);
}

TEST_F(FailureTest, TwoSimultaneousFaultsEventuallyRepaired) {
  // The analytic model conservatively calls >=2 faults a partition; the
  // implementation repairs sequential detections and recovers.
  auto& sys = build(1, 6, fast_failure_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.crash_ne(ring[2]);
  sys.crash_ne(ring[3]);
  run_for_ms(6000);
  sys.join(common::Guid{1}, ring[4]);
  run_for_ms(3000);
  for (const auto id : {ring[0], ring[1], ring[4], ring[5]}) {
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}))
        << "node " << id.value();
    EXPECT_EQ(sys.entity(id)->roster().size(), 4u);
  }
}

}  // namespace
}  // namespace rgb::core
