// Property tests for partition/heal sequences over the RGB hierarchy —
// the paper's node-fault model (Section 5.2) plus the link-fault mode
// net::Network supports (drop probability) that no other test exercises.
//
// Partition/merge is the paper's future-work extension; these tests pin
// down the sequences the implementation does handle: fragment repair on
// both sides of a cut, re-convergence after heal, and no zombie members
// once the network quiesces.
#include <gtest/gtest.h>

#include <tuple>

#include "check/check.hpp"
#include "test_util.hpp"

namespace rgb::core {
namespace {

RgbConfig probing_config() {
  RgbConfig config;
  config.retx_timeout = sim::msec(30);
  config.max_retx = 5;
  config.round_timeout = sim::msec(500);
  config.notify_timeout = sim::msec(200);
  config.max_notify_retx = 10;
  config.probe_period = sim::msec(100);
  return config;
}

// ---------------------------------------------------------------------------
// Property: partitioning a hierarchy's top ring and healing re-converges —
// members joined on either side during the cut end up in every view, and
// the rings re-form without zombies.
// ---------------------------------------------------------------------------

class PartitionHealConvergence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionHealConvergence, HierarchyReconvergesAfterHeal) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{seed}};
  RgbSystem sys{network, probing_config(), HierarchyLayout{2, 3}};
  sys.start_probing();

  // Warm up with one member per side of the future cut.
  sys.join(common::Guid{1}, sys.aps().front());
  sys.join(common::Guid{2}, sys.aps().back());
  simulator.run_until(sim::sec(1));

  // Cut the top ring: BR 1 on one side, BRs 2 and 3 on the other. Every
  // lower tier keeps its own class so each fragment stays connected.
  const auto& top = sys.rings(0).front();
  network.set_partition(top[0], 1);
  for (const auto id : sys.rings(1)[0]) network.set_partition(id, 1);
  network.set_partition(top[1], 2);
  network.set_partition(top[2], 2);
  for (const auto id : sys.rings(1)[1]) network.set_partition(id, 2);
  for (const auto id : sys.rings(1)[2]) network.set_partition(id, 2);

  // Churn on both sides while the network is split.
  sys.join(common::Guid{3}, sys.aps()[0]);  // side 1
  sys.join(common::Guid{4}, sys.aps()[4]);  // side 2
  simulator.run_until(sim::sec(8));

  // Heal and let probing/merging reunite the fragments.
  network.clear_partitions();
  simulator.run_until(sim::sec(30));

  EXPECT_TRUE(sys.rings_consistent());
  // Every alive NE converged to the full four-member view: no member lost
  // to the cut, no zombie left behind.
  const auto expected = sys.expected_membership();
  ASSERT_EQ(expected.size(), 4u);
  for (const auto ne : sys.all_nes()) {
    EXPECT_EQ(sys.entity(ne)->ring_members().snapshot(), expected)
        << "node " << ne.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionHealConvergence,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Property: a partition that isolates a single AP ring fragment repairs
// on both sides and merging restores the roster exactly once per node —
// checked through the invariant oracle suite, not ad-hoc assertions.
// ---------------------------------------------------------------------------

TEST(PartitionHeal, OracleSuitePassesOnScriptedPartitionSchedule) {
  check::AdversarialConfig cfg;
  cfg.protocol = check::Protocol::kRgb;
  cfg.tiers = 2;
  cfg.ring_size = 3;
  cfg.initial_members = 6;
  cfg.settle = sim::sec(25);

  // Deterministic schedule: isolate NE 4 (an AP) for two seconds, with a
  // handoff landing elsewhere while the cut is up.
  const check::FaultSchedule schedule = check::parse_schedule(
      "schedule scripted-partition\n"
      "at 2s partition ne 4 1\n"
      "at 3s handoff mh 2 ap 5\n"
      "at 4s heal\n");
  const check::CheckRunResult result = check::run_schedule(cfg, schedule, 11);
  EXPECT_TRUE(result.passed()) << result.report.format();
  EXPECT_EQ(result.events_applied, 3u);
}

// ---------------------------------------------------------------------------
// Link-fault mode: the paper simulates link faults by node faults; the
// network module also supports real per-link loss. Under sustained random
// loss the retransmission schemes must still converge every view, with no
// zombies and conserved drop accounting.
// ---------------------------------------------------------------------------

class LinkFaultConvergence : public ::testing::TestWithParam<double> {};

TEST_P(LinkFaultConvergence, LossyLinksStillConverge) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = net::LatencyModel::uniform(sim::msec(1), sim::msec(3));
  link.drop_probability = GetParam();
  net::Network network{simulator, common::RngStream{42}, link};
  RgbConfig config = probing_config();
  config.max_retx = 12;
  config.max_notify_retx = 20;
  RgbSystem sys{network, config, HierarchyLayout{2, 3}};
  sys.start_probing();

  for (std::uint64_t g = 1; g <= 6; ++g) {
    sys.join(common::Guid{g},
             sys.aps()[static_cast<std::size_t>(g) % sys.aps().size()]);
  }
  // Let the joins get distinct (earlier) op sequences before the ops that
  // supersede them: same-microsecond ops from different NEs may collide in
  // seq order (documented MembershipOp caveat).
  simulator.run_until(sim::msec(100));
  sys.handoff(common::Guid{1}, sys.aps().front());
  sys.leave(common::Guid{2});
  simulator.run_until(sim::sec(20));

  const auto expected = sys.expected_membership();
  for (const auto ne : sys.all_nes()) {
    EXPECT_EQ(sys.entity(ne)->ring_members().snapshot(), expected)
        << "node " << ne.value() << " at loss " << GetParam();
  }
  // Drop accounting stays single-bucket under loss (the metering oracle's
  // conservation bound).
  const auto& m = network.metrics();
  EXPECT_LE(m.delivered + m.dropped_loss + m.dropped_partition +
                m.dropped_crash + m.dropped_unattached,
            m.sent);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LinkFaultConvergence,
                         ::testing::Values(0.05, 0.15, 0.3));

// ---------------------------------------------------------------------------
// Regression: a member present on the minority side of a cut must not be
// resurrected as a zombie after its AP ring declares it failed and the
// partition heals — reconciliation is seq-monotone, so the freshest op
// wins everywhere.
// ---------------------------------------------------------------------------

TEST(PartitionHeal, NoZombieAfterFailDuringPartition) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{9}};
  RgbSystem sys{network, probing_config(), HierarchyLayout{1, 4}};
  sys.start_probing();
  const auto& ring = sys.rings(0).front();

  sys.join(common::Guid{1}, ring[0]);
  sys.join(common::Guid{2}, ring[2]);
  simulator.run_until(sim::sec(1));

  // Cut {0,1} from {2,3}, then member 2 fails on the majority side.
  network.set_partition(ring[0], 1);
  network.set_partition(ring[1], 1);
  sys.fail(common::Guid{2});
  simulator.run_until(sim::sec(6));
  network.clear_partitions();
  simulator.run_until(sim::sec(20));

  const auto expected = sys.expected_membership();
  ASSERT_EQ(expected.size(), 1u);  // only member 1 is left
  for (const auto ne : ring) {
    const auto view = sys.entity(ne)->ring_members().snapshot();
    EXPECT_EQ(view, expected) << "node " << ne.value();
    EXPECT_FALSE(sys.entity(ne)->ring_members().contains(common::Guid{2}))
        << "zombie member 2 at node " << ne.value();
  }
}

// ---------------------------------------------------------------------------
// Partition/heal at scale: a 3-way split of the whole hierarchy (each BR
// with its subtree forms one fragment) under cross-fragment churn, healed
// in *staggered* steps — fragment pairs merge while the third is still
// cut, exercising repeated merge/reform reconciliation instead of one big
// heal. The pin: N >= 2000 members and zero residual view divergence once
// the last fragment rejoins and reconciliation settles.
// ---------------------------------------------------------------------------

TEST(PartitionHeal, ThreeWayStaggeredHealConvergesAtScale) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = net::LatencyModel::uniform(sim::msec(1), sim::msec(3));
  net::Network network{simulator, common::RngStream{17}, link};
  RgbConfig config = probing_config();
  RgbSystem sys{network, config, HierarchyLayout{2, 3}};
  sys.start_probing();

  constexpr std::uint64_t kMembers = 2000;
  for (std::uint64_t g = 1; g <= kMembers; ++g) {
    sys.join(common::Guid{g},
             sys.aps()[static_cast<std::size_t>(g) % sys.aps().size()]);
  }
  simulator.run_until(sim::sec(5));

  // Fragment k: BR k plus its subtree (AP ring k) — then one AP of ring 3
  // is moved over to fragment 1, so its own ring splices it out across the
  // cut and falsely fails its ~N/9 attached members: the mass
  // re-anchoring case the reconciliation round exists for.
  const auto& top = sys.rings(0).front();
  for (int k = 0; k < 3; ++k) {
    network.set_partition(top[static_cast<std::size_t>(k)], k + 1);
    for (const auto id : sys.rings(1)[static_cast<std::size_t>(k)]) {
      network.set_partition(id, k + 1);
    }
  }
  const common::NodeId stranded_ap = sys.rings(1)[2].back();
  network.set_partition(stranded_ap, 1);

  // Cross-fragment churn while split: handoffs whose old and new APs are
  // in different fragments (the false-failure/re-anchor race), a leave and
  // a fail inside fragments, and fresh joins on every side.
  simulator.run_until(sim::sec(7));
  sys.handoff(common::Guid{1}, sys.aps()[4]);   // fragment 1 -> 2
  sys.handoff(common::Guid{2}, sys.aps()[8]);   // fragment 1 -> 3
  sys.handoff(common::Guid{3}, sys.aps()[0]);   // fragment 2 -> 1
  sys.leave(common::Guid{4});
  sys.fail(common::Guid{5});
  sys.join(common::Guid{kMembers + 1}, sys.aps()[1]);
  sys.join(common::Guid{kMembers + 2}, sys.aps()[5]);
  sys.join(common::Guid{kMembers + 3}, sys.aps()[7]);

  // Staggered heal: fragments 1+2 (including the stranded AP, whose mass
  // re-anchor therefore runs in this stage, while fragment 3 — the ring
  // that falsely failed its members — is still cut) merge at 12s;
  // fragment 3 rejoins at 16s.
  simulator.schedule_at(sim::sec(12), [&] {
    network.set_partition(top[0], 0);
    network.set_partition(top[1], 0);
    for (const auto id : sys.rings(1)[0]) network.set_partition(id, 0);
    for (const auto id : sys.rings(1)[1]) network.set_partition(id, 0);
    network.set_partition(stranded_ap, 0);
  });
  simulator.schedule_at(sim::sec(16), [&] { network.clear_partitions(); });
  simulator.run_until(sim::sec(45));

  EXPECT_TRUE(sys.rings_consistent());
  // The post-heal pin: zero (NE, record) disagreements against the
  // expected membership across every alive NE at N >= 2000.
  EXPECT_EQ(sys.view_divergence(), 0u);
  // The reconciliation machinery must actually have run on this path —
  // the merges trigger claim exchanges (oracle-visible via metrics).
  EXPECT_GT(sys.metrics().reconcile_rounds.value(), 0u);
  EXPECT_GT(sys.metrics().merges.value(), 0u);
}

}  // namespace
}  // namespace rgb::core
