// Multi-tier hierarchy behaviour: propagation up/down, hop-count
// conformance with formula (6), maintenance schemes, dynamic NE membership.
#include <gtest/gtest.h>

#include "analysis/scalability.hpp"
#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

class HierarchyTest : public RgbSystemTest {};

TEST_F(HierarchyTest, LayoutCounts) {
  core::HierarchyLayout layout{.ring_tiers = 3, .ring_size = 5};
  EXPECT_EQ(layout.ap_count(), 125u);
  EXPECT_EQ(layout.ring_count(), 31u);
  EXPECT_EQ(layout.ne_count(), 155u);
}

TEST_F(HierarchyTest, ParentChildWiring) {
  auto& sys = build(3, 3);
  // Every AP ring's leader reports to an AG; every AG ring's leader to a BR.
  for (int tier = 1; tier < 3; ++tier) {
    for (const auto& ring : sys.rings(tier)) {
      const auto* leader = sys.entity(ring.front());
      ASSERT_TRUE(leader->parent().valid());
      const auto* parent = sys.entity(leader->parent());
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->tier(), tier - 1);
      EXPECT_EQ(parent->child(), leader->id());
      EXPECT_TRUE(parent->child_ok());
      // Non-leaders know the parent too but have no child binding to it.
      for (const auto id : ring) {
        EXPECT_EQ(sys.entity(id)->parent(), leader->parent());
      }
    }
  }
  // Topmost ring has no parents.
  for (const auto id : sys.rings(0).front()) {
    EXPECT_FALSE(sys.entity(id)->parent().valid());
    EXPECT_FALSE(sys.entity(id)->parent_ok());
  }
}

TEST_F(HierarchyTest, RolesPerTier) {
  auto& sys = build(3, 3);
  EXPECT_EQ(sys.entity(sys.rings(0).front().front())->role(),
            NeRole::kBorderRouter);
  EXPECT_EQ(sys.entity(sys.rings(1).front().front())->role(),
            NeRole::kAccessGateway);
  EXPECT_EQ(sys.entity(sys.rings(2).front().front())->role(),
            NeRole::kAccessProxy);
}

TEST_F(HierarchyTest, JoinPropagatesToEveryTier) {
  auto& sys = build(3, 3);
  sys.join(common::Guid{1}, sys.aps().front());
  run_all();
  EXPECT_TRUE(sys.membership_converged());
  // Spot-check one NE per tier.
  for (int tier = 0; tier < 3; ++tier) {
    const auto id = sys.rings(tier).front().front();
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}))
        << "tier " << tier;
  }
}

// Table I conformance: measured proposal hops == (r+1)*tn - 1 per change.
struct HopCase {
  int tiers;
  int ring_size;
};

class HopConformance : public RgbSystemTest,
                       public ::testing::WithParamInterface<HopCase> {};

TEST_P(HopConformance, MeasuredHopsMatchFormula6) {
  const auto& p = GetParam();
  auto& sys = build(p.tiers, p.ring_size);
  sys.join(common::Guid{1}, sys.aps().front());
  run_all();
  EXPECT_EQ(proposal_hops(),
            analysis::hcn_ring(p.tiers, p.ring_size))
      << "h=" << p.tiers << " r=" << p.ring_size;
  EXPECT_TRUE(sys.membership_converged());
}

INSTANTIATE_TEST_SUITE_P(Shapes, HopConformance,
                         ::testing::Values(HopCase{2, 2}, HopCase{2, 3},
                                           HopCase{2, 5}, HopCase{3, 2},
                                           HopCase{3, 3}, HopCase{3, 4},
                                           HopCase{3, 5}, HopCase{4, 2},
                                           HopCase{4, 3}));

TEST_F(HierarchyTest, ChangeOriginDoesNotAffectHopCount) {
  // Formula (6) is origin-independent: any AP's change floods all rings.
  for (const std::size_t origin : {std::size_t{0}, std::size_t{13},
                                   std::size_t{24}}) {
    sim::Simulator fresh_sim;
    net::Network fresh_net{fresh_sim, common::RngStream{1}};
    RgbSystem sys{fresh_net, RgbConfig{},
                  HierarchyLayout{.ring_tiers = 2, .ring_size = 5}};
    sys.join(common::Guid{1}, sys.aps()[origin]);
    fresh_sim.run();
    std::uint64_t hops = 0;
    for (const auto& [kind, count] : fresh_net.metrics().sent_per_kind) {
      if (kind::is_proposal_kind(kind)) hops += count;
    }
    EXPECT_EQ(hops, analysis::hcn_ring(2, 5)) << "origin " << origin;
  }
}

TEST_F(HierarchyTest, HandoffAcrossRingsConverges) {
  auto& sys = build(3, 3);
  const auto ap_a = sys.aps().front();   // first AP ring
  const auto ap_b = sys.aps().back();    // last AP ring (different subtree)
  sys.join(common::Guid{1}, ap_a);
  run_all();
  sys.handoff(common::Guid{1}, ap_b);
  run_all();
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_EQ(sys.entity(ap_a)->local_members().size(), 0u);
  EXPECT_EQ(sys.entity(ap_b)->local_members().size(), 1u);
  // The top ring sees the member at its new AP.
  const auto top = sys.membership(proto::QueryScheme::kTopmost);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].access_proxy, ap_b);
}

TEST_F(HierarchyTest, ManyJoinsAcrossApsConverge) {
  auto& sys = build(3, 3);
  for (std::uint64_t i = 0; i < 27; ++i) {
    sys.join(common::Guid{i + 1}, sys.aps()[i % sys.aps().size()]);
  }
  run_all();
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_EQ(sys.membership().size(), 27u);
  EXPECT_TRUE(sys.rings_consistent());
}

TEST_F(HierarchyTest, FailRemovesMemberEverywhere) {
  auto& sys = build(3, 3);
  sys.join(common::Guid{1}, sys.aps().front());
  sys.join(common::Guid{2}, sys.aps().back());
  run_all();
  sys.fail(common::Guid{1});
  run_all();
  EXPECT_TRUE(sys.membership_converged());
  const auto view = sys.membership();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].guid, common::Guid{2});
}

// --- maintenance schemes (Section 4.4) --------------------------------------

TEST_F(HierarchyTest, BmsKeepsChangesOutOfUpperTiers) {
  RgbConfig config;
  config.retain_tier = 2;          // BMS: nothing propagates above AP rings
  config.disseminate_down = false;
  auto& sys = build(3, 3, config);
  sys.join(common::Guid{1}, sys.aps().front());
  run_all();
  // AP ring knows; AG and BR do not.
  EXPECT_TRUE(sys.entity(sys.aps().front())
                  ->ring_members()
                  .contains(common::Guid{1}));
  EXPECT_FALSE(sys.entity(sys.rings(1).front().front())
                   ->ring_members()
                   .contains(common::Guid{1}));
  EXPECT_FALSE(sys.entity(sys.rings(0).front().front())
                   ->ring_members()
                   .contains(common::Guid{1}));
  // BMS query (union over AP ring leaders) still finds the member.
  const auto view = sys.membership(proto::QueryScheme::kBottommost);
  ASSERT_EQ(view.size(), 1u);
  // ... but the topmost view is empty.
  EXPECT_TRUE(sys.membership(proto::QueryScheme::kTopmost).empty());
}

TEST_F(HierarchyTest, ImsStopsAtIntermediateTier) {
  RgbConfig config;
  config.retain_tier = 1;  // IMS: AGs learn, BRs do not
  config.disseminate_down = false;
  auto& sys = build(3, 3, config);
  sys.join(common::Guid{1}, sys.aps().front());
  run_all();
  EXPECT_TRUE(sys.entity(sys.rings(1).front().front())
                  ->ring_members()
                  .contains(common::Guid{1}));
  EXPECT_FALSE(sys.entity(sys.rings(0).front().front())
                   ->ring_members()
                   .contains(common::Guid{1}));
  EXPECT_EQ(sys.membership(proto::QueryScheme::kIntermediate).size(), 1u);
}

TEST_F(HierarchyTest, BmsCostsFewerHopsThanTms) {
  RgbConfig bms;
  bms.retain_tier = 2;
  bms.disseminate_down = false;

  sim::Simulator sim_b;
  net::Network net_b{sim_b, common::RngStream{1}};
  RgbSystem sys_b{net_b, bms, HierarchyLayout{.ring_tiers = 3, .ring_size = 3}};
  sys_b.join(common::Guid{1}, sys_b.aps().front());
  sim_b.run();
  std::uint64_t hops_b = 0;
  for (const auto& [kind, count] : net_b.metrics().sent_per_kind) {
    if (kind::is_proposal_kind(kind)) hops_b += count;
  }

  auto& sys_t = build(3, 3);  // TMS default
  sys_t.join(common::Guid{1}, sys_t.aps().front());
  run_all();
  EXPECT_LT(hops_b, proposal_hops());
  EXPECT_EQ(hops_b, 3u);  // exactly one AP-ring round, nothing else
}

TEST_F(HierarchyTest, QueryPlansPerScheme) {
  auto& sys = build(3, 3);
  EXPECT_EQ(sys.query_plan(proto::QueryScheme::kTopmost).targets.size(), 1u);
  EXPECT_EQ(sys.query_plan(proto::QueryScheme::kIntermediate).targets.size(),
            3u);  // r AG rings
  EXPECT_EQ(sys.query_plan(proto::QueryScheme::kBottommost).targets.size(),
            9u);  // r^2 AP rings
}

// --- dynamic NE membership (Section 4.3) ---------------------------------------

TEST_F(HierarchyTest, NeJoinSplicesIntoRingAfterLeader) {
  auto& sys = build(1, 4);
  RgbConfig joiner_config;  // must outlive the NE
  RgbMetrics metrics;
  obs::ProtocolObs obs;
  NetworkEntity newcomer{NodeId{5000}, NeRole::kAccessProxy, 0, network_,
                         joiner_config, metrics, obs};
  const auto leader = sys.rings(0).front().front();
  newcomer.request_ring_join(leader);
  run_all();
  // All five nodes (old four + newcomer) agree on a 5-node roster.
  EXPECT_EQ(newcomer.roster().size(), 5u);
  for (const auto id : sys.rings(0).front()) {
    EXPECT_EQ(sys.entity(id)->roster().size(), 5u);
  }
  // The newcomer sits right after the leader.
  EXPECT_EQ(sys.entity(leader)->next_node(), newcomer.id());
  EXPECT_EQ(newcomer.leader(), leader);
}

TEST_F(HierarchyTest, JoinedNeReceivesMembershipState) {
  auto& sys = build(1, 3);
  sys.join(common::Guid{42}, sys.aps().front());
  run_all();
  RgbConfig joiner_config;
  RgbMetrics metrics;
  obs::ProtocolObs obs;
  NetworkEntity newcomer{NodeId{5000}, NeRole::kAccessProxy, 0, network_,
                         joiner_config, metrics, obs};
  newcomer.request_ring_join(sys.rings(0).front().front());
  run_all();
  EXPECT_TRUE(newcomer.ring_members().contains(common::Guid{42}));
}

TEST_F(HierarchyTest, GracefulLeaveShrinksRing) {
  auto& sys = build(1, 4);
  const auto& ring = sys.rings(0).front();
  auto* leaver = sys.entity(ring[2]);  // non-leader
  leaver->request_ring_leave();
  run_all();
  for (const auto id : ring) {
    if (id == ring[2]) continue;
    EXPECT_EQ(sys.entity(id)->roster().size(), 3u);
  }
  EXPECT_TRUE(leaver->roster().empty());  // detached after Holder-Ack
  // Remaining ring still works.
  sys.join(common::Guid{1}, ring[1]);
  run_all();
  EXPECT_TRUE(sys.entity(ring[0])->ring_members().contains(common::Guid{1}));
}

TEST_F(HierarchyTest, LeaderLeaveHandsOverLeadership) {
  auto& sys = build(1, 4);
  const auto& ring = sys.rings(0).front();
  auto* old_leader = sys.entity(ring[0]);
  old_leader->request_ring_leave();
  run_all();
  // Lowest remaining id becomes leader.
  const auto* successor = sys.entity(ring[1]);
  EXPECT_TRUE(successor->is_leader());
  for (const auto id : {ring[1], ring[2], ring[3]}) {
    EXPECT_EQ(sys.entity(id)->leader(), ring[1]);
    EXPECT_EQ(sys.entity(id)->roster().size(), 3u);
  }
  // Ring remains operational under the new leader.
  sys.join(common::Guid{5}, ring[2]);
  run_all();
  EXPECT_TRUE(sys.entity(ring[3])->ring_members().contains(common::Guid{5}));
}

TEST_F(HierarchyTest, SingletonFormationThenGrowth) {
  RgbConfig config;  // outlives the NEs
  RgbMetrics metrics;
  obs::ProtocolObs obs;
  NetworkEntity first{NodeId{7000}, NeRole::kAccessProxy, 0, network_,
                      config, metrics, obs};
  first.form_singleton_ring();
  EXPECT_TRUE(first.is_leader());
  EXPECT_EQ(first.roster().size(), 1u);

  NetworkEntity second{NodeId{7001}, NeRole::kAccessProxy, 0, network_,
                       config, metrics, obs};
  second.request_ring_join(first.id());
  run_all();
  EXPECT_EQ(first.roster().size(), 2u);
  EXPECT_EQ(second.roster().size(), 2u);
  EXPECT_EQ(first.next_node(), second.id());
  EXPECT_EQ(second.next_node(), first.id());
}

TEST_F(HierarchyTest, ExpectedMembershipTracksFacadeCalls) {
  auto& sys = build(2, 2);
  sys.join(common::Guid{1}, sys.aps()[0]);
  sys.join(common::Guid{2}, sys.aps()[1]);
  sys.leave(common::Guid{1});
  const auto expected = sys.expected_membership();
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected[0].guid, common::Guid{2});
  EXPECT_EQ(sys.ap_of(common::Guid{2}), sys.aps()[1]);
  EXPECT_FALSE(sys.ap_of(common::Guid{1}).valid());
}

}  // namespace
}  // namespace rgb::core
