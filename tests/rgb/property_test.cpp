// Property-based tests: protocol invariants under randomly generated
// schedules, swept over seeds and hierarchy shapes with TEST_P.
#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"
#include "workload/churn.hpp"

namespace rgb::core {
namespace {

// ---------------------------------------------------------------------------
// Property 1: for any random op schedule, once the network quiesces every
// NE's view equals the ground truth (TMS + downward dissemination).
// ---------------------------------------------------------------------------

class RandomScheduleConvergence
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(RandomScheduleConvergence, AllViewsEqualGroundTruth) {
  const auto [tiers, ring_size, seed] = GetParam();
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = net::LatencyModel::uniform(sim::msec(1), sim::msec(4));
  net::Network network{simulator, common::RngStream{seed}, link};
  RgbSystem sys{network, RgbConfig{}, HierarchyLayout{tiers, ring_size}};

  workload::ChurnConfig churn_config;
  churn_config.initial_members = 10;
  churn_config.join_rate = 3.0;
  churn_config.leave_rate = 2.0;
  churn_config.handoff_rate = 6.0;
  churn_config.fail_rate = 1.0;
  churn_config.duration = sim::sec(5);
  churn_config.seed = seed * 7919 + 13;
  workload::ChurnWorkload churn{simulator, sys, sys.aps(), churn_config};
  churn.start();
  simulator.run();

  EXPECT_EQ(sys.membership(), churn.expected_membership());
  EXPECT_TRUE(sys.membership_converged());
  EXPECT_TRUE(sys.rings_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, RandomScheduleConvergence,
    ::testing::Combine(::testing::Values(1, 2, 3),       // tiers
                       ::testing::Values(2, 3, 5),       // ring size
                       ::testing::Values(1u, 2u, 3u)));  // seed

// ---------------------------------------------------------------------------
// Property 2: MQ aggregation preserves semantics — applying the drained
// batches to a member table produces the same final view as applying the
// raw op stream (ordered by seq) directly.
// ---------------------------------------------------------------------------

class MqSemanticPreservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MqSemanticPreservation, DrainedBatchesEqualRawStream) {
  common::RngStream rng{GetParam()};
  constexpr int kGuids = 6;
  constexpr int kOps = 120;

  MessageQueue mq{true};
  MemberTable raw_table;
  std::uint64_t seq = 0;
  // Track each member's current AP so generated handoffs are well-formed
  // chains (old_ap matches), as they are in the real protocol.
  std::unordered_map<std::uint64_t, std::uint64_t> current_ap;

  MemberTable mq_table;
  const auto drain_into = [&](MemberTable& table) {
    for (const auto& op : mq.drain().ops) table.apply(op);
  };

  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t g = 1 + rng.next_below(kGuids);
    MembershipOp op;
    op.seq = ++seq;
    op.uid = seq;
    const auto it = current_ap.find(g);
    if (it == current_ap.end()) {
      op.kind = OpKind::kMemberJoin;
      const std::uint64_t ap = 100 + rng.next_below(8);
      op.member = {Guid{g}, NodeId{ap}, proto::MemberStatus::kOperational};
      current_ap[g] = ap;
    } else {
      switch (rng.next_below(3)) {
        case 0: {  // handoff
          op.kind = OpKind::kMemberHandoff;
          const std::uint64_t ap = 100 + rng.next_below(8);
          op.old_ap = NodeId{it->second};
          op.member = {Guid{g}, NodeId{ap}, proto::MemberStatus::kOperational};
          it->second = ap;
          break;
        }
        case 1:
          op.kind = OpKind::kMemberLeave;
          op.member = {Guid{g}, NodeId{it->second},
                       proto::MemberStatus::kDisconnected};
          current_ap.erase(it);
          break;
        default:
          op.kind = OpKind::kMemberFail;
          op.member = {Guid{g}, NodeId{it->second},
                       proto::MemberStatus::kFailed};
          current_ap.erase(it);
          break;
      }
    }
    raw_table.apply(op);
    mq.insert(op);
    // Drain at random points to exercise partial batches.
    if (rng.chance(0.2)) drain_into(mq_table);
  }
  drain_into(mq_table);

  EXPECT_EQ(mq_table.snapshot(), raw_table.snapshot());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqSemanticPreservation,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Property 3: crashing any single non-leader position of any ring size is
// repaired, and the ring keeps disseminating.
// ---------------------------------------------------------------------------

class SingleFaultRepair
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SingleFaultRepair, RingRepairsAroundAnyPosition) {
  const auto [ring_size, crash_pos] = GetParam();
  if (crash_pos >= ring_size) GTEST_SKIP();

  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{5}};
  RgbConfig config;
  config.retx_timeout = sim::msec(20);
  config.max_retx = 1;
  config.round_timeout = sim::msec(300);
  config.probe_period = sim::msec(100);
  RgbSystem sys{network, config, HierarchyLayout{1, ring_size}};
  sys.start_probing();

  const auto& ring = sys.rings(0).front();
  const auto victim = ring[static_cast<std::size_t>(crash_pos)];
  sys.crash_ne(victim);
  // Traffic makes detection inevitable regardless of which role crashed:
  // leader faults surface through unanswered token requests, member faults
  // through the token pass itself (and probe rounds in quiet periods).
  const auto origin = ring[crash_pos == 0 ? 1u : 0u];
  sys.join(common::Guid{1}, origin);
  simulator.run_until(sim::sec(8));

  for (const auto id : ring) {
    if (id == victim) continue;
    EXPECT_EQ(sys.entity(id)->roster().size(),
              static_cast<std::size_t>(ring_size - 1))
        << "node " << id.value();
    EXPECT_NE(sys.entity(id)->leader(), victim);
    // The repaired ring reached one-round agreement on the join.
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}))
        << "node " << id.value();
  }
}

INSTANTIATE_TEST_SUITE_P(PositionsAndSizes, SingleFaultRepair,
                         ::testing::Combine(::testing::Values(3, 4, 6, 8),
                                            ::testing::Values(0, 1, 2, 5)));

// ---------------------------------------------------------------------------
// Property 4: hop metering is conserved — delivered + every drop category
// equals sent, whatever the scenario.
// ---------------------------------------------------------------------------

class MeteringConservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MeteringConservation, SentEqualsDeliveredPlusDropped) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = net::LatencyModel::uniform(sim::msec(1), sim::msec(3));
  link.drop_probability = 0.1;
  net::Network network{simulator, common::RngStream{GetParam()}, link};
  RgbConfig config;
  config.max_retx = 30;
  config.max_notify_retx = 30;
  config.notify_timeout = sim::msec(200);
  RgbSystem sys{network, config, HierarchyLayout{2, 3}};

  workload::ChurnConfig churn_config;
  churn_config.initial_members = 8;
  churn_config.duration = sim::sec(3);
  churn_config.seed = GetParam();
  workload::ChurnWorkload churn{simulator, sys, sys.aps(), churn_config};
  churn.start();
  simulator.run();

  // No crashes in this scenario, so conservation is exact: every sent
  // message was either delivered or dropped by loss.
  const auto& m = network.metrics();
  EXPECT_EQ(m.sent, m.delivered + m.dropped_loss + m.dropped_partition +
                        m.dropped_unattached);
  EXPECT_EQ(sys.membership(), churn.expected_membership());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeteringConservation,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace rgb::core
