// Multi-observer cut detection (the stability layer): K-alert aggregation
// into one batched reconfiguration, flap suppression under loss bursts via
// alert retraction, the bounded stability-timeout fallback that preserves
// the single-observer liveness bound, and batched silent-member flushes on
// the MH detection path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rgb/mobile_host.hpp"
#include "test_util.hpp"

namespace rgb::core {
namespace {

using testing::RgbSystemTest;

/// fast_failure_config (failure_test.cpp) + the stability plane enabled
/// with its defaults (K = 2, window 150ms, timeout 400ms).
RgbConfig stability_config() {
  RgbConfig config;
  config.retx_timeout = sim::msec(20);
  config.max_retx = 1;
  config.round_timeout = sim::msec(300);
  config.notify_timeout = sim::msec(200);
  config.probe_period = sim::msec(100);
  config.stability = true;
  return config;
}

class StabilityTest : public RgbSystemTest {};

TEST_F(StabilityTest, MultipleObserversOfDeadLeaderFireOneBatchedCut) {
  auto& sys = build(1, 5, stability_config());
  const auto& ring = sys.rings(0).front();
  sys.crash_ne(ring[0]);  // the leader
  // Two members with pending ops independently exhaust their token-request
  // retx against the dead leader: two alerts, one aggregator (the
  // presumptive next leader), K = 2 reached -> ONE batched cut.
  sys.join(common::Guid{1}, ring[2]);
  sys.join(common::Guid{2}, ring[3]);
  run_for_ms(4000);
  EXPECT_GE(sys.metrics().stability_alerts.value(), 2u);
  EXPECT_EQ(sys.metrics().stability_cuts.value(), 1u);
  EXPECT_EQ(sys.metrics().repairs.value(), 1u);  // one reconfiguration
  for (const auto id : {ring[1], ring[2], ring[3], ring[4]}) {
    const auto* ne = sys.entity(id);
    EXPECT_EQ(ne->leader(), ring[1]) << "node " << id.value();
    EXPECT_EQ(ne->roster().size(), 4u);
    EXPECT_TRUE(ne->ring_members().contains(common::Guid{1}));
    EXPECT_TRUE(ne->ring_members().contains(common::Guid{2}));
  }
}

TEST_F(StabilityTest, ApCrashCutBatchesStrandedMembersIntoOneFlush) {
  auto& sys = build(1, 5, stability_config());
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  sys.join(common::Guid{1}, ring[2]);
  sys.join(common::Guid{2}, ring[2]);
  run_for_ms(500);
  sys.crash_ne(ring[2]);
  run_for_ms(4000);
  // One cut: the NE splice and both stranded Member-Failures ride a single
  // batched op flush (one RepairMsg, one token round), not one round each.
  EXPECT_EQ(sys.metrics().stability_cuts.value(), 1u);
  EXPECT_EQ(sys.metrics().repairs.value(), 1u);
  for (const auto id : {ring[0], ring[1], ring[3], ring[4]}) {
    const auto* ne = sys.entity(id);
    EXPECT_EQ(ne->roster().size(), 4u) << "node " << id.value();
    EXPECT_FALSE(ne->ring_members().contains(common::Guid{1}));
    EXPECT_FALSE(ne->ring_members().contains(common::Guid{2}));
  }
}

TEST_F(StabilityTest, LossBurstBelowThresholdCausesNoViewChanges) {
  RgbConfig config = stability_config();
  // Window wide enough that a live suspect's ack (retried every
  // retx_timeout) beats it even through the burst.
  config.stability_window = sim::msec(300);
  config.stability_timeout = sim::msec(800);
  auto& sys = build(1, 5, config);
  sys.start_probing();
  run_for_ms(500);
  const std::uint64_t pre_vc = sys.obs().tracer.view_changes().value();
  ASSERT_EQ(sys.metrics().repairs.value(), 0u);

  network_.set_default_drop_probability(0.5);
  run_for_ms(250);
  network_.set_default_drop_probability(0.0);
  run_for_ms(2000);

  // The burst raised suspicions, but every suspect answered its alert:
  // all flaps retracted, zero reconfigurations, zero view changes.
  EXPECT_GE(sys.metrics().stability_suppressed_flaps.value(), 1u);
  EXPECT_EQ(sys.metrics().repairs.value(), 0u);
  EXPECT_EQ(sys.obs().tracer.view_changes().value(), pre_vc);
  for (const auto id : sys.rings(0).front()) {
    EXPECT_EQ(sys.entity(id)->roster().size(), 5u) << "node " << id.value();
  }
}

TEST_F(StabilityTest, SameLossBurstFlapsWithoutStability) {
  // Control cell for the test above: identical burst, stability off —
  // the single-observer detectors declare at least one false failure.
  RgbConfig config = stability_config();
  config.stability = false;
  auto& sys = build(1, 5, config);
  sys.start_probing();
  run_for_ms(500);
  network_.set_default_drop_probability(0.5);
  run_for_ms(250);
  network_.set_default_drop_probability(0.0);
  run_for_ms(2000);
  EXPECT_GE(sys.metrics().repairs.value(), 1u);
}

namespace latency {

/// Detection latency (crash -> splice, tracer ne_detection max) of one
/// crashed non-leader under probing, with and without the stability layer.
double crash_detection_max(bool stability) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{42}};
  RgbConfig config = stability_config();
  config.stability = stability;
  // The 2x bound holds whenever stability_window fits inside the
  // single-observer detection budget (probe wait + retx exhaustion). The
  // production defaults satisfy this against the conformance config
  // (150ms window vs ~500ms budget); this test's sped-up detectors have a
  // ~100ms budget, so the window scales down with them.
  config.stability_window = sim::msec(60);
  config.stability_timeout = sim::msec(200);
  RgbSystem sys{network, config, HierarchyLayout{1, 5}};
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  // Mid-probe-period crash: the baseline includes the probe wait that a
  // real detection pays (crashing exactly on a round boundary would make
  // the single-observer baseline artificially instantaneous).
  simulator.run_until(sim::msec(530));
  sys.crash_ne(ring[2]);
  simulator.run_until(sim::sec(5));
  EXPECT_GE(sys.obs().tracer.ne_detection().count(), 1u)
      << "stability=" << stability;
  return sys.obs().tracer.ne_detection().max();
}

}  // namespace latency

TEST_F(StabilityTest, DetectionLatencyStaysWithinTwiceSingleObserver) {
  // A real crash has no counter-observation, so the cut fires at window
  // expiry: total latency = single-observer detection + stability_window,
  // which the defaults keep within 2x the single-observer bound.
  const double base = latency::crash_detection_max(false);
  const double stab = latency::crash_detection_max(true);
  EXPECT_GT(base, 0.0);
  EXPECT_LE(stab, 2.0 * base);
}

TEST_F(StabilityTest, StabilityTimeoutFallbackPreservesLiveness) {
  RgbConfig config = stability_config();
  // Pathological aggregator window: the cut would only fire after 30s. The
  // observer's bounded fallback must not wait for it.
  config.stability_window = sim::sec(30);
  config.stability_timeout = sim::msec(400);
  auto& sys = build(1, 5, config);
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  run_for_ms(500);
  sys.crash_ne(ring[2]);
  run_for_ms(3000);
  EXPECT_GE(sys.metrics().stability_timeout_fallbacks.value(), 1u);
  EXPECT_GE(sys.metrics().repairs.value(), 1u);
  for (const auto id : {ring[0], ring[1], ring[3], ring[4]}) {
    EXPECT_EQ(sys.entity(id)->roster().size(), 4u) << "node " << id.value();
  }
}

TEST_F(StabilityTest, SilentMembersAreDeferredAndBatchFailed) {
  RgbConfig config = stability_config();
  config.mh_failure_timeout = sim::sec(1);
  auto& sys = build(1, 3, config);
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  // Two heartbeating hosts on the same AP.
  std::vector<std::unique_ptr<MobileHost>> hosts;
  for (std::uint64_t i = 0; i < 2; ++i) {
    hosts.push_back(std::make_unique<MobileHost>(
        common::NodeId{900001 + i}, common::Guid{i + 1}, common::GroupId{1},
        network_, sim::msec(100)));
    hosts[i]->join_via(ring[1]);
  }
  run_for_ms(2000);
  for (const auto id : ring) {
    ASSERT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}));
  }
  // Both go silent together: the sweep defers them (counter-probe goes
  // unanswered), then one flush batch-fails the pair.
  hosts[0]->fail();
  hosts[1]->fail();
  run_for_ms(5000);
  EXPECT_GE(sys.metrics().stability_batched_failures.value(), 2u);
  EXPECT_EQ(sys.metrics().repairs.value(), 0u);  // no ring reconfiguration
  for (const auto id : ring) {
    const auto* ne = sys.entity(id);
    EXPECT_FALSE(ne->ring_members().contains(common::Guid{1}));
    EXPECT_FALSE(ne->ring_members().contains(common::Guid{2}));
  }
}

TEST_F(StabilityTest, LiveMemberAnswersCounterProbeAndIsKept) {
  RgbConfig config = stability_config();
  config.mh_failure_timeout = sim::msec(500);
  auto& sys = build(1, 3, config);
  const auto& ring = sys.rings(0).front();
  sys.start_probing();
  // Heartbeat period much longer than the failure timeout: every sweep
  // sees the member as silent, but the kAlert counter-probe wakes it into
  // an immediate heartbeat — deferred, never declared.
  auto host = std::make_unique<MobileHost>(common::NodeId{900001},
                                           common::Guid{1}, common::GroupId{1},
                                           network_, sim::sec(2));
  host->join_via(ring[1]);
  run_for_ms(6000);
  EXPECT_GE(sys.metrics().stability_suppressed_flaps.value(), 1u);
  for (const auto id : ring) {
    EXPECT_TRUE(sys.entity(id)->ring_members().contains(common::Guid{1}))
        << "node " << id.value();
  }
}

}  // namespace
}  // namespace rgb::core
