#include "rgb/message_queue.hpp"

#include <gtest/gtest.h>

namespace rgb::core {
namespace {

MembershipOp op(OpKind kind, std::uint64_t seq, std::uint64_t guid,
                std::uint64_t ap, std::uint64_t old_ap = 0,
                std::uint64_t claim = 0) {
  MembershipOp o;
  o.kind = kind;
  o.seq = seq;
  o.uid = seq;  // tests reuse the seq as the unique id
  // Epoch invariant unless overridden: a join/handoff starts its own
  // attachment epoch (claim_seq == seq); departures name the epoch they end
  // via the explicit `claim` argument.
  o.claim_seq = claim != 0 ? claim
                : (kind == OpKind::kMemberJoin || kind == OpKind::kMemberHandoff)
                    ? seq
                    : 0;
  o.member = MemberRecord{Guid{guid}, NodeId{ap},
                          proto::MemberStatus::kOperational};
  if (old_ap != 0) o.old_ap = NodeId{old_ap};
  return o;
}

TEST(MessageQueue, StartsEmpty) {
  MessageQueue mq;
  EXPECT_TRUE(mq.empty());
  EXPECT_EQ(mq.size(), 0u);
  EXPECT_TRUE(mq.drain().empty());
}

TEST(MessageQueue, DrainReturnsAllWhenAggregating) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 1, 100));
  mq.insert(op(OpKind::kMemberJoin, 2, 2, 100));
  mq.insert(op(OpKind::kMemberJoin, 3, 3, 100));
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops.size(), 3u);
  EXPECT_TRUE(mq.empty());
}

TEST(MessageQueue, DrainReturnsOneWhenNotAggregating) {
  MessageQueue mq{false};
  mq.insert(op(OpKind::kMemberJoin, 1, 1, 100));
  mq.insert(op(OpKind::kMemberJoin, 2, 2, 100));
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops.size(), 1u);
  EXPECT_EQ(batch.ops[0].seq, 1u);
  EXPECT_EQ(mq.size(), 1u);
}

TEST(MessageQueue, DrainHonoursMaxOpsCap) {
  MessageQueue mq{true};
  for (int i = 1; i <= 5; ++i) {
    mq.insert(op(OpKind::kMemberJoin, static_cast<std::uint64_t>(i),
                 static_cast<std::uint64_t>(i), 100));
  }
  const auto batch = mq.drain(2);
  EXPECT_EQ(batch.ops.size(), 2u);
  EXPECT_EQ(mq.size(), 3u);
}

TEST(MessageQueue, DuplicateSeqDropped) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 7, 1, 100));
  mq.insert(op(OpKind::kMemberJoin, 7, 1, 100));
  EXPECT_EQ(mq.size(), 1u);
  EXPECT_EQ(mq.ops_collapsed(), 1u);
}

TEST(MessageQueue, JoinThenLeaveCancels) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberLeave, 2, 9, 100, 0, /*claim=*/1));
  EXPECT_TRUE(mq.empty());
  EXPECT_EQ(mq.ops_collapsed(), 1u);
}

TEST(MessageQueue, JoinThenFailCancels) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberFail, 2, 9, 100, 0, /*claim=*/1));
  EXPECT_TRUE(mq.empty());
}

TEST(MessageQueue, ReanchoringJoinIsNotCancelledByDeparture) {
  // A reaffirm repair re-anchors an existing attachment epoch (claim_seq <
  // seq), so the epoch is already in tables elsewhere even though the op is
  // locally originated. A following departure must NOT annihilate with it:
  // cancelling the pair would strand the previously disseminated
  // operational record as a permanent zombie.
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 5, 9, 100, 0, /*claim=*/3));
  mq.insert(op(OpKind::kMemberFail, 6, 9, 100, 0, /*claim=*/3));
  EXPECT_EQ(mq.size(), 2u);
  EXPECT_EQ(mq.ops_collapsed(), 0u);
}

TEST(MessageQueue, HandoffChainCollapses) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberHandoff, 1, 9, 200, 100));  // 100 -> 200
  mq.insert(op(OpKind::kMemberHandoff, 2, 9, 300, 200));  // 200 -> 300
  ASSERT_EQ(mq.size(), 1u);
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[0].kind, OpKind::kMemberHandoff);
  EXPECT_EQ(batch.ops[0].member.access_proxy, NodeId{300});
  EXPECT_EQ(batch.ops[0].old_ap, NodeId{100});  // net movement 100 -> 300
  EXPECT_EQ(batch.ops[0].seq, 2u);              // newest seq wins
}

TEST(MessageQueue, NonAdjacentHandoffDoesNotCollapse) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberHandoff, 1, 9, 200, 100));
  mq.insert(op(OpKind::kMemberHandoff, 2, 9, 400, 300));  // gap: not b->c
  EXPECT_EQ(mq.size(), 2u);
}

TEST(MessageQueue, JoinThenHandoffBecomesJoinAtNewAp) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberHandoff, 2, 9, 300, 100));
  ASSERT_EQ(mq.size(), 1u);
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[0].kind, OpKind::kMemberJoin);
  EXPECT_EQ(batch.ops[0].member.access_proxy, NodeId{300});
}

TEST(MessageQueue, LeaveThenJoinStaysOrdered) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberLeave, 1, 9, 100));
  mq.insert(op(OpKind::kMemberJoin, 2, 9, 200));
  ASSERT_EQ(mq.size(), 2u);
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[0].kind, OpKind::kMemberLeave);
  EXPECT_EQ(batch.ops[1].kind, OpKind::kMemberJoin);
}

TEST(MessageQueue, NoAggregationAcrossDifferentMembers) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 1, 100));
  mq.insert(op(OpKind::kMemberLeave, 2, 2, 100));
  EXPECT_EQ(mq.size(), 2u);
}

TEST(MessageQueue, AggregationDisabledKeepsEverything) {
  MessageQueue mq{false};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberLeave, 2, 9, 100));
  EXPECT_EQ(mq.size(), 2u);
  EXPECT_EQ(mq.ops_collapsed(), 0u);
}

TEST(MessageQueue, ContributorsSurviveCollapse) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberHandoff, 1, 9, 200, 100),
            Contributor{NodeId{50}, 501});
  mq.insert(op(OpKind::kMemberHandoff, 2, 9, 300, 200),
            Contributor{NodeId{51}, 502});
  const auto batch = mq.drain();
  ASSERT_EQ(batch.contributors.size(), 2u);
  EXPECT_EQ(batch.contributors[0].ne, NodeId{50});
  EXPECT_EQ(batch.contributors[1].ne, NodeId{51});
}

TEST(MessageQueue, CancelledOpsOrphanTheirContributors) {
  MessageQueue mq{true};
  // A locally originated join (cancellable) annihilated by a notified fail:
  // the fail's contributor is owed an immediate ack.
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberFail, 2, 9, 100, 0, /*claim=*/1),
            Contributor{NodeId{51}, 502});
  EXPECT_TRUE(mq.empty());
  const auto orphans = mq.take_orphaned_acks();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].notify_id, 502u);
  // Second call returns nothing.
  EXPECT_TRUE(mq.take_orphaned_acks().empty());
}

TEST(MessageQueue, DuplicateContributorNotRepeated) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100), Contributor{NodeId{50}, 501});
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100), Contributor{NodeId{50}, 501});
  const auto batch = mq.drain();
  EXPECT_EQ(batch.contributors.size(), 1u);
}

TEST(MessageQueue, CountsInsertedOps) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 1, 100));
  mq.insert(op(OpKind::kMemberJoin, 2, 2, 100));
  EXPECT_EQ(mq.ops_inserted(), 2u);
}

TEST(MessageQueue, StaleOpIsAbsorbedNotChained) {
  // Regression: a disseminated copy of an OLDER handoff racing a newer
  // pending one must not chain "backwards" and rewrite the new destination.
  MessageQueue mq{true};
  // Newer local move 19 -> 13 is pending...
  mq.insert(op(OpKind::kMemberHandoff, 9, 7, 13, 19));
  // ...when the stale dissemination of the older move 13 -> 19 arrives.
  mq.insert(op(OpKind::kMemberHandoff, 5, 7, 19, 13));
  ASSERT_EQ(mq.size(), 1u);
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[0].member.access_proxy, NodeId{13});
  EXPECT_EQ(batch.ops[0].seq, 9u);
}

TEST(MessageQueue, StaleLeaveCannotCancelNewerJoin) {
  // Regression companion: an old leave must not annihilate a newer rejoin.
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 9, 7, 100));
  mq.insert(op(OpKind::kMemberLeave, 5, 7, 100));
  ASSERT_EQ(mq.size(), 1u);
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[0].kind, OpKind::kMemberJoin);
}

TEST(MessageQueue, StaleAbsorptionStillOwesContributorAck) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberHandoff, 9, 7, 13, 19));
  mq.insert(op(OpKind::kMemberHandoff, 5, 7, 19, 13),
            Contributor{NodeId{50}, 501});
  const auto batch = mq.drain();
  ASSERT_EQ(batch.contributors.size(), 1u);
  EXPECT_EQ(batch.contributors[0].notify_id, 501u);
}

TEST(MessageQueue, CollapseClearsProvenanceWhenItDiffers) {
  // Regression: merging a local op into one that arrived from the parent
  // must not inherit the "don't echo up" suppression.
  MessageQueue mq{true};
  MembershipOp downward = op(OpKind::kMemberHandoff, 5, 7, 13, 19);
  downward.from_parent_of = NodeId{13};
  mq.insert(std::move(downward));
  MembershipOp local = op(OpKind::kMemberHandoff, 9, 7, 20, 13);
  mq.insert(std::move(local));  // chains: 19->13 then 13->20
  const auto batch = mq.drain();
  ASSERT_EQ(batch.ops.size(), 1u);
  EXPECT_EQ(batch.ops[0].member.access_proxy, NodeId{20});
  EXPECT_FALSE(batch.ops[0].from_parent_of.valid());  // suppression cleared
  EXPECT_FALSE(batch.ops[0].from_child_of.valid());
}

TEST(MessageQueue, CollapseKeepsSharedProvenance) {
  MessageQueue mq{true};
  MembershipOp first = op(OpKind::kMemberHandoff, 5, 7, 13, 19);
  first.from_parent_of = NodeId{13};
  MembershipOp second = op(OpKind::kMemberHandoff, 9, 7, 20, 13);
  second.from_parent_of = NodeId{13};  // both came down from the parent
  mq.insert(std::move(first));
  mq.insert(std::move(second));
  const auto batch = mq.drain();
  ASSERT_EQ(batch.ops.size(), 1u);
  EXPECT_EQ(batch.ops[0].from_parent_of, NodeId{13});  // still suppressed
}

TEST(MessageQueue, DisseminatedJoinCopyIsNotCancelledByLeave) {
  // Regression: a join that arrived via notification (contributor set) is
  // already known elsewhere in the hierarchy; a following leave must
  // propagate rather than annihilate locally.
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100), Contributor{NodeId{50}, 501});
  mq.insert(op(OpKind::kMemberLeave, 2, 9, 100, 0, /*claim=*/1));
  ASSERT_EQ(mq.size(), 2u);  // both queued, nothing cancelled
  const auto batch = mq.drain();
  EXPECT_EQ(batch.ops[1].kind, OpKind::kMemberLeave);
}

TEST(MessageQueue, ProvenancedJoinCopyIsNotCancelledByLeave) {
  MessageQueue mq{true};
  MembershipOp join = op(OpKind::kMemberJoin, 1, 9, 100);
  join.from_parent_of = NodeId{7};  // disseminated downwards to this node
  mq.insert(std::move(join));
  mq.insert(op(OpKind::kMemberFail, 2, 9, 100, 0, /*claim=*/1));
  EXPECT_EQ(mq.size(), 2u);
}

TEST(MessageQueue, CollapsedLocalJoinRemainsCancellable) {
  // Local join + local handoff collapse; a leave may still annihilate the
  // result because nothing ever left this node.
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 1, 9, 100));
  mq.insert(op(OpKind::kMemberHandoff, 2, 9, 200, 100));
  mq.insert(op(OpKind::kMemberLeave, 3, 9, 200, 0, /*claim=*/2));
  EXPECT_TRUE(mq.empty());
}

TEST(MessageQueue, DrainPreservesFifoOrder) {
  MessageQueue mq{true};
  mq.insert(op(OpKind::kMemberJoin, 3, 1, 100));
  mq.insert(op(OpKind::kMemberJoin, 1, 2, 100));
  mq.insert(op(OpKind::kMemberJoin, 2, 3, 100));
  const auto batch = mq.drain();
  ASSERT_EQ(batch.ops.size(), 3u);
  EXPECT_EQ(batch.ops[0].member.guid, Guid{1});
  EXPECT_EQ(batch.ops[1].member.guid, Guid{2});
  EXPECT_EQ(batch.ops[2].member.guid, Guid{3});
}

}  // namespace
}  // namespace rgb::core
