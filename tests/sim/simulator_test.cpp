#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace rgb::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(msec(30), [&] { order.push_back(3); });
  s.schedule_at(msec(10), [&] { order.push_back(1); });
  s.schedule_at(msec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Simulator, FifoWithinSameTimestamp) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(msec(5), [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  Time fired_at = 0;
  s.schedule_after(msec(10), [&] {
    s.schedule_after(msec(5), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, msec(15));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(msec(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator s;
  int fires = 0;
  const EventId id = s.schedule_at(msec(1), [&] { ++fires; });
  s.run();
  s.cancel(id);  // already fired: no-op
  s.cancel(id);
  s.cancel(EventId{});  // invalid id: no-op
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, CancelledEventsExcludedFromPendingCount) {
  Simulator s;
  const EventId a = s.schedule_at(msec(1), [] {});
  s.schedule_at(msec(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, CancelAfterFireCannotSkewPendingCount) {
  // Regression: a stale cancel of an already-fired EventId must not be
  // double-counted against later pending events (the old
  // `queue_.size() - cancelled_.size()` arithmetic would underflow or
  // undercount if a stale id ever landed in the tombstone set).
  Simulator s;
  const EventId fired = s.schedule_at(msec(1), [] {});
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  s.cancel(fired);  // stale: already fired
  s.cancel(fired);
  EXPECT_EQ(s.pending_events(), 0u);
  s.schedule_at(msec(2), [] {});
  const EventId b = s.schedule_at(msec(3), [] {});
  s.cancel(fired);  // stale again, now with live events pending
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(b);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PendingCountTracksGroundTruthUnderRandomCancels) {
  // Drive random schedule / cancel (live, stale and double) / step
  // interleavings and compare pending_events() against an exact shadow set:
  // every callback removes its own id when it fires.
  Simulator s;
  common::RngStream rng{0xD15EA5E};
  std::vector<EventId> ever_scheduled;
  std::unordered_set<std::uint64_t> live_ids;
  for (int op = 0; op < 5000; ++op) {
    const auto pick = rng.next_below(100);
    if (pick < 50 || ever_scheduled.empty()) {
      auto seq_cell = std::make_shared<std::uint64_t>(0);
      const EventId id =
          s.schedule_at(s.now() + rng.next_below(1000),
                        [seq_cell, &live_ids] { live_ids.erase(*seq_cell); });
      *seq_cell = id.seq;
      ever_scheduled.push_back(id);
      live_ids.insert(id.seq);
    } else if (pick < 80) {
      // Cancel a random id from the full history: may be live, already
      // fired, or already cancelled — all three must keep counts exact.
      const auto& id = ever_scheduled[static_cast<std::size_t>(
          rng.next_below(ever_scheduled.size()))];
      live_ids.erase(id.seq);
      s.cancel(id);
    } else {
      s.step();
    }
    ASSERT_EQ(s.pending_events(), live_ids.size()) << "after op " << op;
  }
}

TEST(Simulator, TombstonePurgeBoundsHeapUnderCancelChurn) {
  // Regression (PR3): cancelled entries used to stay in the heap until
  // popped, so retransmission-style churn — arm a far-future timer, cancel
  // it, repeat — grew memory without bound. The purge must keep the heap
  // within a small factor of the live event count throughout.
  Simulator s;
  const EventId keeper = s.schedule_at(sec(3600), [] {});
  (void)keeper;
  std::size_t max_queued = 0;
  for (int i = 0; i < 100000; ++i) {
    // Far-future timers: without purging, none of these tombstones would
    // ever be popped during the loop.
    const EventId id = s.schedule_at(sec(60) + static_cast<Time>(i), [] {});
    s.cancel(id);
    max_queued = std::max(max_queued, s.queued_entries());
  }
  EXPECT_EQ(s.pending_events(), 1u);
  // Live = 1..2 per iteration, so the 2x-live purge policy keeps the heap
  // tiny; 64 covers the purge's minimum-size hysteresis.
  EXPECT_LE(max_queued, 70u);
  EXPECT_LE(s.queued_entries(), 70u);
}

TEST(Simulator, PurgeKeepsOrderingAndCancelSemantics) {
  // A purge rebuilds the heap mid-flight; ordering, cancellation and
  // pending counts must be unaffected.
  Simulator s;
  common::RngStream rng{0xF00D};
  std::vector<Time> fired;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 2000; ++i) {
    const Time t = msec(1) + rng.next_below(1'000'000);
    const EventId id = s.schedule_at(t, [&fired, &s] {
      fired.push_back(s.now());
    });
    if (i % 2 == 0) cancelled.push_back(id);
  }
  for (const EventId id : cancelled) s.cancel(id);  // triggers purges
  EXPECT_EQ(s.pending_events(), 1000u);
  s.run();
  EXPECT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Simulator, SlotReuseCannotResurrectStaleCancel) {
  // ABA guard: after an event fires, its storage slot is recycled; a stale
  // cancel of the old id must not kill the new occupant.
  Simulator s;
  const EventId old_id = s.schedule_at(msec(1), [] {});
  s.run();
  bool fired = false;
  // With a free-listed slot store the very next schedule reuses the slot.
  const EventId fresh = s.schedule_at(msec(2), [&] { fired = true; });
  EXPECT_EQ(fresh.slot, old_id.slot);  // documents the reuse this guards
  s.cancel(old_id);
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<Time> fired;
  for (Time t = 10; t <= 50; t += 10) {
    s.schedule_at(msec(t), [&, t] { fired.push_back(t); });
  }
  s.run_until(msec(30));
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(s.now(), msec(30));
  s.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockThroughQuietPeriods) {
  Simulator s;
  s.run_until(msec(100));
  EXPECT_EQ(s.now(), msec(100));
}

TEST(Simulator, RunUntilSkipsCancelledWithoutAdvancingTime) {
  Simulator s;
  const EventId id = s.schedule_at(msec(500), [] {});
  s.cancel(id);
  s.run_until(msec(100));
  EXPECT_EQ(s.now(), msec(100));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(usec(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), usec(99));
}

TEST(Simulator, MaxEventsBoundsRun) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  const auto executed = s.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_GT(s.pending_events(), 0u);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(msec(1), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Simulator, RunUntilCapKeepsClockBehindPendingEvents) {
  // Regression: when the max_events cap stopped a run_until with events
  // <= deadline still pending, the clock used to jump to the deadline
  // anyway — the survivors then fired "in the past", so now() ran
  // backwards and latencies measured across the jump went negative.
  Simulator s;
  std::vector<Time> fired_at;
  for (Time t = 1; t <= 6; ++t) {
    s.schedule_at(msec(t), [&] { fired_at.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(sec(1), 3), 3u);
  EXPECT_EQ(s.now(), msec(3));  // parked at the last executed event
  EXPECT_EQ(s.pending_events(), 3u);
  EXPECT_EQ(s.run_until(sec(1)), 3u);
  EXPECT_EQ(s.now(), sec(1));  // drained: the deadline applies again
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  EXPECT_EQ(fired_at.back(), msec(6));
}

TEST(Simulator, RunUntilZeroBudgetLeavesClockUntouched) {
  // Degenerate corner of the same regression: a zero event budget with
  // work pending inside the deadline must not move the clock at all.
  Simulator s;
  s.schedule_at(msec(5), [] {});
  EXPECT_EQ(s.run_until(sec(1), 0), 0u);
  EXPECT_EQ(s.now(), 0u);
  s.run();
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, NowStaysMonotoneAcrossCappedChunks) {
  // Driving a run in small capped chunks (the bench/oracle sampling
  // pattern) must observe a non-decreasing clock from inside events.
  Simulator s;
  std::vector<Time> observed;
  for (Time t = 1; t <= 40; ++t) {
    s.schedule_at(usec(t * 7), [&] { observed.push_back(s.now()); });
  }
  while (s.pending_events() > 0) s.run_until(sec(1), 3);
  EXPECT_EQ(observed.size(), 40u);
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  Time last = 0;
  bool monotone = true;
  common::RngStream rng{7};
  for (int i = 0; i < 10000; ++i) {
    const Time t = rng.next_below(1'000'000);
    s.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace rgb::sim
