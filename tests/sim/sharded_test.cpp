// Sharded-kernel contract tests: shard routing and clocks, global
// (between-windows) events, cross-shard outbox handoff at the barrier, and
// the core determinism claim — the trajectory is a function of the logical
// shard count alone, byte-identical for every worker-thread count.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rgb::sim {
namespace {

TEST(ShardedSimulator, OneShardReducesToSerialScheduler) {
  Simulator s;
  s.configure_shards(1, msec(1));
  EXPECT_FALSE(s.is_sharded());
  std::vector<int> order;
  s.schedule_at(msec(20), [&] { order.push_back(2); });
  s.schedule_at(msec(10), [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), msec(20));
}

TEST(ShardedSimulator, ScheduleOnRoutesToItsShard) {
  Simulator s;
  s.configure_shards(3, msec(1));
  std::vector<std::uint32_t> ran_on;
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    s.schedule_on(shard, msec(1), [&] {
      EXPECT_TRUE(in_shard_context());
      ran_on.push_back(current_executing_shard());
    });
  }
  s.run();
  // Workers default to 1: windows execute shards in index order.
  EXPECT_EQ(ran_on, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_FALSE(in_shard_context());
}

TEST(ShardedSimulator, ScheduleAtInsideWindowStaysOnExecutingShard) {
  Simulator s;
  s.configure_shards(2, msec(1));
  std::uint32_t follow_up_shard = 99;
  s.schedule_on(1, msec(1), [&] {
    s.schedule_after(usec(10), [&] {
      follow_up_shard = current_executing_shard();
    });
  });
  s.run();
  EXPECT_EQ(follow_up_shard, 1u);
}

TEST(ShardedSimulator, GlobalsRunAtFencesInTimeSeqOrder) {
  Simulator s;
  s.configure_shards(2, msec(1));
  std::vector<std::string> order;
  s.schedule_on(0, msec(2), [&] { order.push_back("shard@2"); });
  s.schedule_global(msec(2), [&] {
    EXPECT_FALSE(in_shard_context());
    order.push_back("global@2a");
  });
  s.schedule_global(msec(2), [&] { order.push_back("global@2b"); });
  s.schedule_global(msec(1), [&] { order.push_back("global@1"); });
  s.run();
  // A fence at t precedes the windows from t: globals run first, FIFO
  // within the timestamp.
  EXPECT_EQ(order, (std::vector<std::string>{"global@1", "global@2a",
                                             "global@2b", "shard@2"}));
}

TEST(ShardedSimulator, ScheduleAtOutsideWindowsBecomesGlobal) {
  Simulator s;
  s.configure_shards(2, msec(1));
  bool in_shard = true;
  const EventId id = s.schedule_at(msec(1), [&] {
    in_shard = in_shard_context();
  });
  EXPECT_EQ(id.shard, Simulator::kGlobalShard);
  s.run();
  EXPECT_FALSE(in_shard);
}

TEST(ShardedSimulator, CrossShardHandoffDrainsAtBarrier) {
  Simulator s;
  s.configure_shards(2, msec(1));
  Time delivered_at = 0;
  std::uint32_t delivered_on = 99;
  s.schedule_on(0, msec(1), [&] {
    // Beyond the window end, as the lookahead contract requires (window =
    // [1ms, 2ms); target 3ms).
    s.schedule_on(1, s.now() + msec(2), [&] {
      delivered_at = s.now();
      delivered_on = current_executing_shard();
    });
  });
  s.run();
  EXPECT_EQ(delivered_at, msec(3));
  EXPECT_EQ(delivered_on, 1u);
}

TEST(ShardedSimulator, RunAsProvidesShardContextBetweenWindows) {
  Simulator s;
  s.configure_shards(3, msec(1));
  s.run_until(msec(5));
  s.run_as(2, [&] {
    EXPECT_TRUE(in_shard_context());
    EXPECT_EQ(current_executing_shard(), 2u);
    EXPECT_EQ(s.now(), msec(5));  // idle shard pulled up to the fence
  });
  EXPECT_FALSE(in_shard_context());
}

TEST(ShardedSimulator, CancelWorksAcrossShardsBetweenWindows) {
  Simulator s;
  s.configure_shards(2, msec(1));
  bool fired = false;
  const EventId id = s.schedule_on(1, msec(2), [&] { fired = true; });
  s.schedule_on(0, msec(1), [] {});
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(ShardedSimulator, PerShardClocksAndCountersAggregate) {
  Simulator s;
  s.configure_shards(2, msec(1));
  s.schedule_on(0, msec(1), [] {});
  s.schedule_on(1, msec(4), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.run();
  EXPECT_EQ(s.executed_events(), 2u);
  EXPECT_EQ(s.pending_events(), 0u);
}

/// One deterministic mini-workload: K shards each run a local event chain
/// and periodically hand work to the next shard; every fire appends to its
/// shard's own trace (single writer per shard, so recording is race-free
/// under any worker count). Returns the per-shard traces.
std::vector<std::vector<std::pair<Time, int>>> run_workload(
    unsigned workers) {
  constexpr std::uint32_t kShards = 4;
  Simulator s;
  s.configure_shards(kShards, msec(1));
  s.set_workers(workers);
  std::vector<std::vector<std::pair<Time, int>>> trace(kShards);

  std::function<void(int)> tick = [&](int step) {
    const std::uint32_t shard = current_executing_shard();
    trace[shard].emplace_back(s.now(), step);
    if (step >= 12) return;
    s.schedule_after(usec(700), [&tick, step] { tick(step + 1); });
    if (step % 3 == 0) {
      // Cross-shard handoff: 2 epochs out satisfies the lookahead bound.
      s.schedule_on((shard + 1) % kShards, s.now() + msec(2),
                    [&tick, step] { tick(step + 100); });
    }
  };
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    s.schedule_on(shard, msec(1) + usec(shard * 111),
                  [&tick] { tick(1); });
  }
  s.run();
  return trace;
}

TEST(ShardedSimulator, TrajectoryIndependentOfWorkerCount) {
  const auto serial = run_workload(1);
  std::size_t fired = 0;
  for (const auto& t : serial) {
    fired += t.size();
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  }
  EXPECT_GT(fired, 50u);  // the workload actually spread across shards
  EXPECT_EQ(run_workload(2), serial);
  EXPECT_EQ(run_workload(8), serial);
}

TEST(ShardedSimulator, RunUntilCapHoldsInShardedModeToo) {
  // The serial run_until cap regression, restated for the sharded loop:
  // a capped run must not advance the fence past still-pending windows.
  Simulator s;
  s.configure_shards(2, msec(1));
  for (Time t = 1; t <= 6; ++t) {
    s.schedule_on(t % 2 == 0 ? 1u : 0u, msec(t), [] {});
  }
  // The cap is window-granular in sharded mode: it stops between windows,
  // never past events that were due before the deadline.
  const auto executed = s.run_until(sec(1), 3);
  EXPECT_LT(executed, 6u);
  EXPECT_GT(s.pending_events(), 0u);
  EXPECT_LT(s.now(), sec(1));
  s.run_until(sec(1));
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.now(), sec(1));
}

}  // namespace
}  // namespace rgb::sim
