// Shared test fixtures: a simulator + network pair and helpers to build RGB
// hierarchies and drive them to quiescence.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "rgb/rgb.hpp"
#include "sim/simulator.hpp"

namespace rgb::testing {

/// Simulator + network with a fixed 1ms link latency (deterministic hop
/// ordering) unless overridden.
class SimNetTest : public ::testing::Test {
 protected:
  explicit SimNetTest(net::LinkConfig link = {}, std::uint64_t seed = 42)
      : network_(simulator_, common::RngStream{seed}, link) {}

  /// Runs the simulation to exhaustion (bounded) and returns events run.
  std::uint64_t run_all(std::uint64_t max_events = 20'000'000) {
    return simulator_.run(max_events);
  }

  /// Runs for `ms` simulated milliseconds.
  std::uint64_t run_for_ms(std::uint64_t ms) {
    return simulator_.run_until(simulator_.now() + sim::msec(ms));
  }

  sim::Simulator simulator_;
  net::Network network_;
};

/// SimNetTest plus a ready-built RGB hierarchy.
class RgbSystemTest : public SimNetTest {
 protected:
  RgbSystemTest() = default;

  core::RgbSystem& build(int tiers, int ring_size,
                         core::RgbConfig config = {}) {
    core::HierarchyLayout layout;
    layout.ring_tiers = tiers;
    layout.ring_size = ring_size;
    system_ = std::make_unique<core::RgbSystem>(network_, config, layout);
    return *system_;
  }

  /// Total proposal-plane hops (token + notifications) since the last
  /// metrics reset — the quantity Table I counts.
  [[nodiscard]] std::uint64_t proposal_hops() const {
    std::uint64_t hops = 0;
    for (const auto& [kind, count] : network_.metrics().sent_per_kind) {
      if (core::kind::is_proposal_kind(kind)) hops += count;
    }
    return hops;
  }

  std::unique_ptr<core::RgbSystem> system_;
};

}  // namespace rgb::testing
