// Experiment E7 — figure-style series extending Table II: Function-Well
// probability vs node fault probability, per allowed-partition budget k
// and per hierarchy scale. Shows the small-vs-large-hierarchy robustness
// gap the paper's conclusion (3) highlights.
//
// The sweep itself is the registered scenario "fw.sweep" (exp:: harness);
// this bench renders it per hierarchy scale and keeps the CSV side-channel
// ($RGB_BENCH_CSV_DIR) for plotting scripts.
#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/scalability.hpp"
#include "analysis/series.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "exp/exp.hpp"

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E7 / figure: Function-Well probability vs f (formula (8))",
      "two hierarchy scales (n=125 and n=1000), k in {1,2,3}.");

  const exp::TrialRunner runner;
  const exp::RunResult result =
      runner.run(*exp::builtin_scenarios().find("fw.sweep"));

  // One table per hierarchy scale; the (h, r) grid comes from the scenario's
  // own cells so edits to the sweep never silently drop rows here.
  std::vector<std::pair<int, int>> shapes;
  for (const exp::CellResult& cell : result.cells) {
    const std::pair<int, int> shape{cell.params.get_int("h"),
                                    cell.params.get_int("r")};
    if (std::find(shapes.begin(), shapes.end(), shape) == shapes.end()) {
      shapes.push_back(shape);
    }
  }
  for (const auto& [h, r] : shapes) {
    const auto n = analysis::ring_ap_count(h, r);
    common::TextTable table({"f(%)", "fw k=1 (%)", "fw k=2 (%)", "fw k=3 (%)"});
    analysis::Series series{"fw_vs_f_r" + std::to_string(r),
                            {"f", "fw_k1", "fw_k2", "fw_k3"}};
    for (const exp::CellResult& cell : result.cells) {
      if (cell.params.get_int("h") != h || cell.params.get_int("r") != r) {
        continue;
      }
      const double f = cell.params.get("f");
      const double k1 = cell.metric("fw_k1").mean;
      const double k2 = cell.metric("fw_k2").mean;
      const double k3 = cell.metric("fw_k3").mean;
      table.add_row({common::cell(f * 100.0, 2), common::percent_cell(k1),
                     common::percent_cell(k2), common::percent_cell(k3)});
      series.add_row({f, k1, k2, k3});
    }
    std::cout << "n = " << n << " (h=" << h << ", r=" << r << ")\n";
    table.print(std::cout);
    if (const auto path = series.save_csv_if_configured()) {
      std::cout << "(csv written to " << *path << ")\n";
    }
    std::cout << '\n';
  }

  std::cout << "shape check (paper conclusions): at f=0.1% both scales are\n"
               ">99.5% even with k=1; at f=2% the 125-AP hierarchy holds\n"
               ">99.5% with k=3 while the 1000-AP hierarchy collapses to\n"
               "~72% — larger deployments need smaller fault rates or more\n"
               "partition tolerance.\n";
  return 0;
}
