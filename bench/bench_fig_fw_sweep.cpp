// Experiment E7 — figure-style series extending Table II: Function-Well
// probability vs node fault probability, per allowed-partition budget k
// and per hierarchy scale. Shows the small-vs-large-hierarchy robustness
// gap the paper's conclusion (3) highlights.
#include <iostream>

#include "analysis/reliability.hpp"
#include "analysis/series.hpp"
#include "analysis/scalability.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E7 / figure: Function-Well probability vs f (formula (8))",
      "two hierarchy scales (n=125 and n=1000), k in {1,2,3}.");

  for (const int r : {5, 10}) {
    const auto n = analysis::ring_ap_count(3, r);
    common::TextTable table({"f(%)", "fw k=1 (%)", "fw k=2 (%)", "fw k=3 (%)"});
    analysis::Series series{"fw_vs_f_r" + std::to_string(r),
                            {"f", "fw_k1", "fw_k2", "fw_k3"}};
    for (const double f : {0.0001, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02,
                           0.03, 0.05}) {
      const double k1 = analysis::prob_fw_hierarchy(3, r, f, 1);
      const double k2 = analysis::prob_fw_hierarchy(3, r, f, 2);
      const double k3 = analysis::prob_fw_hierarchy(3, r, f, 3);
      table.add_row({common::cell(f * 100.0, 2), common::percent_cell(k1),
                     common::percent_cell(k2), common::percent_cell(k3)});
      series.add_row({f, k1, k2, k3});
    }
    std::cout << "n = " << n << " (h=3, r=" << r << ")\n";
    table.print(std::cout);
    if (const auto path = series.save_csv_if_configured()) {
      std::cout << "(csv written to " << *path << ")\n";
    }
    std::cout << '\n';
  }

  std::cout << "shape check (paper conclusions): at f=0.1% both scales are\n"
               ">99.5% even with k=1; at f=2% the 125-AP hierarchy holds\n"
               ">99.5% with k=3 while the 1000-AP hierarchy collapses to\n"
               "~72% — larger deployments need smaller fault rates or more\n"
               "partition tolerance.\n";
  return 0;
}
