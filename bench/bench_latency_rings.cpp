// Experiment E4 — the paper's §6 delay claim: "the delay for propagating
// membership messages with small-scale logical rings is smaller compared
// with that with large-scale logical rings".
//
// Fixed group size (125 APs), three shapes:
//   * one flat 125-node ring (Totem-like baseline),
//   * RGB hierarchies of heights 1..3 (ring sizes 125, ~11, 5),
// measuring the virtual time from a Member-Join until the change has fully
// propagated, and the proposal hops spent.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "flatring/flat_ring.hpp"

namespace {

using namespace rgb;  // NOLINT

struct Shape {
  const char* name;
  int tiers;
  int ring_size;
};

struct Outcome {
  double converge_ms;
  std::uint64_t hops;
};

Outcome run_rgb(int tiers, int ring_size) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{3}};
  core::RgbSystem sys{network, core::RgbConfig{},
                      core::HierarchyLayout{tiers, ring_size}};
  sys.join(common::Guid{1}, sys.aps().front());
  simulator.run();
  return Outcome{sim::to_ms(simulator.now()),
                 bench::proposal_hops(network)};
}

Outcome run_flat(int nodes) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{3}};
  flatring::FlatRingSystem sys{network, flatring::FlatRingConfig{nodes}};
  sys.join(common::Guid{1}, sys.aps().front());
  simulator.run();
  return Outcome{sim::to_ms(simulator.now()),
                 bench::sent_of_kind(network, flatring::kRingToken)};
}

}  // namespace

int main() {
  bench::banner(
      "E4 / Section 6 claim — propagation delay: small vs large rings",
      "one membership change, 1ms links, time until every node knows.\n"
      "n(APs) held near 125; deeper hierarchies = smaller rings.");

  common::TextTable table(
      {"shape", "APs", "ring size r", "converge(ms)", "proposal hops"});

  const auto flat = run_flat(125);
  table.add_row({"flat single ring", common::cell(125), common::cell(125),
                 common::cell(flat.converge_ms, 1), common::cell(flat.hops)});

  const Shape shapes[] = {
      {"RGB h=1 (one ring)", 1, 125},
      {"RGB h=2 (rings of ~11)", 2, 11},   // 121 APs
      {"RGB h=3 (rings of 5)", 3, 5},      // 125 APs
  };
  for (const Shape& s : shapes) {
    const auto out = run_rgb(s.tiers, s.ring_size);
    std::uint64_t aps = 1;
    for (int i = 0; i < s.tiers; ++i) aps *= static_cast<std::uint64_t>(s.ring_size);
    table.add_row({s.name, common::cell(aps), common::cell(s.ring_size),
                   common::cell(out.converge_ms, 1), common::cell(out.hops)});
  }
  table.print(std::cout);

  std::cout
      << "\nshape check: convergence time drops sharply as rings shrink\n"
         "(rounds in different rings run concurrently; a flat 125-ring\n"
         "serialises 125 sequential hops), at the price of the extra\n"
         "notification hops the hierarchy spends — exactly the paper's\n"
         "small-ring argument.\n";
  return 0;
}
