// Experiment E1 — reproduces Table I of the paper: normalised hop counts
// HCN_Tree vs HCN_Ring for the six (n, h, r) configurations, from
//   (a) the closed-form formulae (1)-(6), and
//   (b) full discrete-event simulation of one membership change through
//       the actual tree and ring implementations (every row simulated,
//       including n = 10000).
#include <iostream>

#include "analysis/scalability.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "tree/tree_membership.hpp"

namespace {

using namespace rgb;  // NOLINT

std::uint64_t simulate_ring(int h, int r) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  core::RgbSystem sys{network, core::RgbConfig{}, core::HierarchyLayout{h, r}};
  sys.join(common::Guid{1}, sys.aps().front());
  simulator.run();
  return bench::proposal_hops(network);
}

std::uint64_t simulate_tree(int h, int r) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  tree::TreeSystem sys{network, tree::TreeConfig{h, r, true}};
  sys.join(common::Guid{1}, sys.leaves().front());
  simulator.run();
  return bench::sent_of_kind(network, tree::kTreeProposal);
}

}  // namespace

int main() {
  bench::banner(
      "E1 / Table I — scalability: tree vs ring normalised hop count",
      "paper columns: n,h,r and HCN per hierarchy; our extra columns show\n"
      "the hop count measured by simulating one Member-Join end-to-end\n"
      "(tree sim differs from formula by O(h) at h=5: formula (2) counts\n"
      "one fewer representative chain per deep level; see EXPERIMENTS.md).");

  common::TextTable table({"n", "h_tree", "r", "HCN_tree", "sim_tree",
                           "h_ring", "HCN_ring", "sim_ring"});
  for (const auto& row : analysis::paper_table1()) {
    table.add_row({common::cell(row.n_tree), common::cell(row.h_tree),
                   common::cell(row.r), common::cell(row.hcn_tree),
                   common::cell(simulate_tree(row.h_tree, row.r)),
                   common::cell(row.h_ring), common::cell(row.hcn_ring),
                   common::cell(simulate_ring(row.h_ring, row.r))});
  }
  table.print(std::cout);

  std::cout << "\npaper Table I reference values: HCN_tree = 29, 149, 750, "
               "109, 1099, 11000;\nHCN_ring = 35, 185, 935, 120, 1220, "
               "12220 — identical to the analytic columns above.\n";
  return 0;
}
