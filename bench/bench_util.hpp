// Shared helpers for the bench binaries: proposal-hop counting and run
// harness glue. Every bench prints the paper-style table it regenerates
// plus a short header naming the experiment id from DESIGN.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "net/network.hpp"
#include "rgb/rgb.hpp"

namespace rgb::bench {

/// Sum of proposal-plane sends (token circulation + inter-ring
/// notifications) — the quantity the paper's HopCount analysis prices.
inline std::uint64_t proposal_hops(const net::Network& network) {
  return core::proposal_hops(network);
}

/// Sends metered under one specific kind.
inline std::uint64_t sent_of_kind(const net::Network& network,
                                  net::MessageKind kind) {
  const auto it = network.metrics().sent_per_kind.find(kind);
  return it == network.metrics().sent_per_kind.end() ? 0 : it->second;
}

inline void banner(const std::string& experiment,
                   const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n"
            << description << "\n\n";
}

}  // namespace rgb::bench
