// Experiment E9 — cross-protocol comparison on identical churn workloads:
// RGB vs tree hierarchy (CONGRESS-like) vs flat ring (Totem-like) vs
// SWIM-style gossip. Reports total messages, bytes, convergence, and the
// idle-period cost (messages sent during 30 quiet seconds after the churn).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "flatring/flat_ring.hpp"
#include "gossip/gossip_membership.hpp"
#include "tree/tree_membership.hpp"
#include "workload/churn.hpp"

namespace {

using namespace rgb;  // NOLINT

struct Outcome {
  std::uint64_t messages;
  std::uint64_t kbytes;
  bool converged;
  std::uint64_t idle_messages;
};

workload::ChurnConfig churn_config() {
  workload::ChurnConfig config;
  config.initial_members = 40;
  config.join_rate = 4.0;
  config.leave_rate = 2.0;
  config.handoff_rate = 8.0;
  config.fail_rate = 1.0;
  config.duration = sim::sec(10);
  config.seed = 77;
  return config;
}

template <typename System, typename ApsFn, typename ConvergedFn>
Outcome drive(sim::Simulator& simulator, net::Network& network,
              System& system, ApsFn aps, ConvergedFn converged) {
  workload::ChurnWorkload churn{simulator, system, aps(), churn_config()};
  churn.start();
  simulator.run_until(sim::sec(60));
  const auto busy = network.metrics().sent;
  const auto kb = network.metrics().bytes_sent / 1024;
  simulator.run_until(sim::sec(90));
  const auto idle = network.metrics().sent - busy;
  return Outcome{busy, kb, converged(), idle};
}

}  // namespace

int main() {
  bench::banner(
      "E9 — protocol comparison under identical churn (16 APs, ~40 members,"
      " 10s churn)",
      "messages/bytes during churn+settle; idle = messages in 30 quiet\n"
      "seconds afterwards. All protocols must converge to the same view.");

  common::TextTable table(
      {"protocol", "messages", "KiB", "converged", "idle msgs (30s)"});

  {
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{5}};
    core::RgbSystem sys{network, core::RgbConfig{},
                        core::HierarchyLayout{2, 4}};
    const auto out = drive(
        simulator, network, sys, [&] { return sys.aps(); },
        [&] { return sys.membership_converged(); });
    table.add_row({"RGB (h=2, r=4)", common::cell(out.messages),
                   common::cell(out.kbytes), out.converged ? "yes" : "NO",
                   common::cell(out.idle_messages)});
  }
  {
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{5}};
    tree::TreeSystem sys{network, tree::TreeConfig{3, 4, true}};
    const auto out = drive(
        simulator, network, sys, [&] { return sys.leaves(); },
        [&] { return sys.converged(); });
    table.add_row({"tree (CONGRESS-like)", common::cell(out.messages),
                   common::cell(out.kbytes), out.converged ? "yes" : "NO",
                   common::cell(out.idle_messages)});
  }
  {
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{5}};
    flatring::FlatRingSystem sys{network, flatring::FlatRingConfig{16}};
    const auto out = drive(
        simulator, network, sys, [&] { return sys.aps(); },
        [&] { return sys.converged(); });
    table.add_row({"flat ring (Totem-like)", common::cell(out.messages),
                   common::cell(out.kbytes), out.converged ? "yes" : "NO",
                   common::cell(out.idle_messages)});
  }
  {
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{5}};
    gossip::GossipSystem sys{network, gossip::GossipConfig{.nodes = 16},
                             common::RngStream{6}};
    sys.start();
    const auto out = drive(
        simulator, network, sys, [&] { return sys.aps(); },
        [&] { return sys.converged(); });
    table.add_row({"gossip (SWIM-like)", common::cell(out.messages),
                   common::cell(out.kbytes), out.converged ? "yes" : "NO",
                   common::cell(out.idle_messages)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: the event-driven protocols (RGB, tree, flat\n"
               "ring) are silent when idle; gossip pays its periodic probe\n"
               "cost forever. RGB spends more than the bare tree flood per\n"
               "change (token circles + acks) but brings repair/failover,\n"
               "which the tree lacks (E2/E9 reliability story).\n";
  return 0;
}
