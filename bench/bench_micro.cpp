// Experiment E10 — google-benchmark micro-benchmarks of the building
// blocks: event kernel, RNG, MQ aggregation, member-table apply, network
// send/deliver, and an end-to-end Member-Join round on a small hierarchy.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "workload/churn.hpp"

namespace {

using namespace rgb;  // NOLINT

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::uint64_t i = 0; i < events; ++i) {
      simulator.schedule_at(i % 1000, [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

void BM_RngNextBelow(benchmark::State& state) {
  common::RngStream rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_MessageQueueAggregatedInsert(benchmark::State& state) {
  for (auto _ : state) {
    core::MessageQueue mq{true};
    for (std::uint64_t i = 0; i < 64; ++i) {
      core::MembershipOp op;
      op.kind = core::OpKind::kMemberJoin;
      op.seq = i + 1;
      op.uid = i + 1;
      op.member = {common::Guid{i % 8}, common::NodeId{1},
                   proto::MemberStatus::kOperational};
      mq.insert(std::move(op));
    }
    benchmark::DoNotOptimize(mq.drain());
  }
}
BENCHMARK(BM_MessageQueueAggregatedInsert);

void BM_MemberTableApply(benchmark::State& state) {
  std::uint64_t seq = 0;
  core::MemberTable table;
  for (auto _ : state) {
    core::MembershipOp op;
    op.kind = core::OpKind::kMemberJoin;
    op.seq = ++seq;
    op.uid = seq;
    op.member = {common::Guid{seq % 4096}, common::NodeId{seq % 64},
                 proto::MemberStatus::kOperational};
    benchmark::DoNotOptimize(table.apply(op));
  }
}
BENCHMARK(BM_MemberTableApply);

void BM_NetworkSendDeliver(benchmark::State& state) {
  class Sink : public net::Endpoint {
   public:
    void deliver(const net::Envelope&) override {}
  };
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{1}};
  Sink a, b;
  network.attach(common::NodeId{1}, &a);
  network.attach(common::NodeId{2}, &b);
  for (auto _ : state) {
    network.send(net::Envelope{common::NodeId{1}, common::NodeId{2}, 0, 64, 0});
    simulator.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_JoinRoundOnHierarchy(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  std::uint64_t guid = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{1}};
    core::RgbSystem sys{network, core::RgbConfig{},
                        core::HierarchyLayout{2, r}};
    state.ResumeTiming();
    sys.join(common::Guid{++guid}, sys.aps().front());
    simulator.run();
    benchmark::DoNotOptimize(simulator.executed_events());
  }
}
BENCHMARK(BM_JoinRoundOnHierarchy)->Arg(3)->Arg(5)->Arg(8);

void BM_ChurnSecondOnHierarchy(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::Network network{simulator, common::RngStream{1}};
    core::RgbSystem sys{network, core::RgbConfig{},
                        core::HierarchyLayout{2, 5}};
    workload::ChurnConfig config;
    config.initial_members = 20;
    config.duration = sim::sec(1);
    workload::ChurnWorkload churn{simulator, sys, sys.aps(), config};
    state.ResumeTiming();
    churn.start();
    simulator.run();
    benchmark::DoNotOptimize(network.metrics().sent);
  }
}
BENCHMARK(BM_ChurnSecondOnHierarchy);

}  // namespace

BENCHMARK_MAIN();
