// Experiment E5 — Membership-Query algorithm cost per maintenance scheme
// (paper Section 4.4): TMS answers at the top, IMS at the gateway tier,
// BMS by fanning out to every AP-ring leader. The bench also prices the
// *maintenance* side (proposal hops per membership change), exposing the
// trade-off the paper describes: TMS queries are cheap but maintenance
// propagates everywhere; BMS maintenance is local but queries fan out.
#include <iostream>
#include <optional>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "rgb/query.hpp"

namespace {

using namespace rgb;  // NOLINT

struct SchemeCost {
  std::uint64_t maintenance_hops_per_join;
  std::uint64_t query_messages;
  double query_ms;
  std::size_t members_returned;
};

SchemeCost measure(proto::QueryScheme scheme, int retain_tier,
                   bool disseminate_down, int h, int r, int members) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{11}};
  core::RgbConfig config;
  config.retain_tier = retain_tier;
  config.disseminate_down = disseminate_down;
  core::RgbSystem sys{network, config, core::HierarchyLayout{h, r}};

  for (int i = 0; i < members; ++i) {
    sys.join(common::Guid{static_cast<std::uint64_t>(i + 1)},
             sys.aps()[static_cast<std::size_t>(i) % sys.aps().size()]);
  }
  simulator.run();
  const auto maintenance = bench::proposal_hops(network);

  core::QueryClient client{common::NodeId{999999}, network};
  std::optional<core::QueryClient::Result> result;
  client.issue(sys.query_plan(scheme), sim::sec(10),
               [&](core::QueryClient::Result r2) { result = std::move(r2); });
  simulator.run();

  return SchemeCost{maintenance / static_cast<std::uint64_t>(members),
                    result->messages, sim::to_ms(result->latency),
                    result->members.size()};
}

}  // namespace

int main() {
  bench::banner(
      "E5 / Section 4.4 — query cost per maintenance scheme (h=3, r=5, "
      "125 APs, 50 members)",
      "maint = proposal hops per membership change; query = messages and\n"
      "latency for one global membership query.");

  common::TextTable table({"scheme", "maint hops/join", "query msgs",
                           "query ms", "members found"});

  const int h = 3, r = 5, members = 50;
  const struct {
    const char* name;
    proto::QueryScheme scheme;
    int retain_tier;
    bool down;
  } schemes[] = {
      {"TMS (topmost)", proto::QueryScheme::kTopmost, 0, true},
      {"IMS (gateways)", proto::QueryScheme::kIntermediate, 1, false},
      {"BMS (bottommost)", proto::QueryScheme::kBottommost, 2, false},
  };
  for (const auto& s : schemes) {
    const auto cost = measure(s.scheme, s.retain_tier, s.down, h, r, members);
    table.add_row({s.name, common::cell(cost.maintenance_hops_per_join),
                   common::cell(cost.query_messages),
                   common::cell(cost.query_ms, 1),
                   common::cell(static_cast<std::uint64_t>(cost.members_returned))});
  }
  table.print(std::cout);

  std::cout << "\nshape check (paper): \"The Membership-Query algorithm with\n"
               "the TMS scheme is more efficient than that with the BMS\n"
               "scheme with regard to the requesting application. However,\n"
               "to maintain membership information using the TMS scheme, it\n"
               "is both space- and time-consuming\" — visible above as the\n"
               "maintenance/query cost inversion between TMS and BMS.\n";
  return 0;
}
