// Experiment E5 — Membership-Query algorithm cost per maintenance scheme
// (paper Section 4.4): TMS answers at the top, IMS at the gateway tier,
// BMS by fanning out to every AP-ring leader. The bench also prices the
// *maintenance* side (proposal hops per membership change), exposing the
// trade-off the paper describes: TMS queries are cheap but maintenance
// propagates everywhere; BMS maintenance is local but queries fan out.
//
// The per-scheme simulation is the registered scenario "query.schemes"
// (exp:: harness); this bench maps cells back to scheme names and prints
// the Section 4.4 comparison table.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "exp/exp.hpp"
#include "rgb/query.hpp"

namespace {

const char* scheme_name(rgb::proto::QueryScheme scheme) {
  switch (scheme) {
    case rgb::proto::QueryScheme::kTopmost: return "TMS (topmost)";
    case rgb::proto::QueryScheme::kIntermediate: return "IMS (gateways)";
    case rgb::proto::QueryScheme::kBottommost: return "BMS (bottommost)";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E5 / Section 4.4 — query cost per maintenance scheme (h=3, r=5, "
      "125 APs, 50 members)",
      "maint = proposal hops per membership change; query = messages and\n"
      "latency for one global membership query.");

  const exp::TrialRunner runner;
  const exp::RunResult result =
      runner.run(*exp::builtin_scenarios().find("query.schemes"));

  common::TextTable table({"scheme", "maint hops/join", "query msgs",
                           "query ms", "members found"});
  for (const exp::CellResult& cell : result.cells) {
    const auto scheme =
        static_cast<proto::QueryScheme>(cell.params.get_int("scheme"));
    // Round, don't truncate: means stay integral only while the scenario
    // runs one deterministic trial per cell.
    const auto int_mean = [&cell](const char* name) {
      return common::cell(static_cast<std::uint64_t>(
          std::llround(cell.metric(name).mean)));
    };
    table.add_row({scheme_name(scheme), int_mean("maint_hops_per_join"),
                   int_mean("query_msgs"),
                   common::cell(cell.metric("query_ms").mean, 1),
                   int_mean("members_found")});
  }
  table.print(std::cout);

  std::cout << "\nshape check (paper): \"The Membership-Query algorithm with\n"
               "the TMS scheme is more efficient than that with the BMS\n"
               "scheme with regard to the requesting application. However,\n"
               "to maintain membership information using the TMS scheme, it\n"
               "is both space- and time-consuming\" — visible above as the\n"
               "maintenance/query cost inversion between TMS and BMS.\n";
  return 0;
}
