// Experiment E6 — figure-style series extending Table I: normalised hop
// count vs group size for both hierarchies across heights and branching
// factors. (The paper prints only six points; this regenerates the whole
// curve family so the crossover behaviour is visible.)
#include <iostream>

#include "analysis/scalability.hpp"
#include "analysis/series.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E6 / figure: HCN vs n series (analytic, formulae (4) and (6))",
      "series over r for each height pair (tree h+1 vs ring h, equal n).");

  for (const int h_ring : {2, 3, 4}) {
    common::TextTable table(
        {"r", "n", "HCN_tree(h=" + std::to_string(h_ring + 1) + ")",
         "HCN_ring(h=" + std::to_string(h_ring) + ")", "ring/tree"});
    analysis::Series series{"hcn_vs_r_h" + std::to_string(h_ring),
                            {"r", "n", "hcn_tree", "hcn_ring"}};
    for (const int r : {2, 3, 4, 5, 6, 8, 10, 12, 16}) {
      const auto n = analysis::ring_ap_count(h_ring, r);
      const auto tree = analysis::hcn_tree(h_ring + 1, r);
      const auto ring = analysis::hcn_ring(h_ring, r);
      table.add_row({common::cell(r), common::cell(n), common::cell(tree),
                     common::cell(ring),
                     common::cell(static_cast<double>(ring) /
                                      static_cast<double>(tree),
                                  3)});
      series.add_row({static_cast<double>(r), static_cast<double>(n),
                      static_cast<double>(tree), static_cast<double>(ring)});
    }
    table.print(std::cout);
    if (const auto path = series.save_csv_if_configured()) {
      std::cout << "(csv written to " << *path << ")\n";
    }
    std::cout << '\n';
  }

  std::cout << "shape check (paper Section 5.1): the ring/tree ratio stays\n"
               "within ~1.0-1.3x across the whole family — \"the scalability\n"
               "property of the ring-based hierarchy is almost the same as\n"
               "that of the tree-based hierarchy\".\n";
  return 0;
}
