// Experiment E11 (extension figure) — convergence latency and message cost
// vs group size: how long one membership change takes to reach every node
// as the hierarchy grows, RGB vs the tree baseline vs a flat ring.
//
// Complements E4 (fixed n, varying ring size) with the scaling dimension:
// RGB's depth grows logarithmically, so convergence time grows ~linearly in
// r*h while flat-ring time grows linearly in n.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "flatring/flat_ring.hpp"
#include "tree/tree_membership.hpp"

namespace {

using namespace rgb;  // NOLINT

double rgb_converge_ms(int h, int r) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{9}};
  core::RgbSystem sys{network, core::RgbConfig{}, core::HierarchyLayout{h, r}};
  sys.join(common::Guid{1}, sys.aps().front());
  simulator.run();
  return sim::to_ms(simulator.now());
}

double tree_converge_ms(int h, int r) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{9}};
  tree::TreeSystem sys{network, tree::TreeConfig{h, r, true}};
  sys.join(common::Guid{1}, sys.leaves().front());
  simulator.run();
  return sim::to_ms(simulator.now());
}

double flat_converge_ms(int n) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{9}};
  flatring::FlatRingSystem sys{network, flatring::FlatRingConfig{n}};
  sys.join(common::Guid{1}, sys.aps().front());
  simulator.run();
  return sim::to_ms(simulator.now());
}

}  // namespace

int main() {
  bench::banner(
      "E11 / extension figure — convergence latency vs group size (1ms "
      "links)",
      "time until every node holds the change; RGB h=ring tiers, r=5.");

  common::TextTable table({"n (APs)", "RGB (h,r)", "RGB ms", "tree ms",
                           "flat ring ms"});
  const struct {
    int h;
    int r;
  } shapes[] = {{1, 5}, {2, 5}, {3, 5}, {4, 5}};
  for (const auto& s : shapes) {
    std::uint64_t n = 1;
    for (int i = 0; i < s.h; ++i) n *= static_cast<std::uint64_t>(s.r);
    table.add_row({common::cell(n),
                   "(" + std::to_string(s.h) + "," + std::to_string(s.r) + ")",
                   common::cell(rgb_converge_ms(s.h, s.r), 1),
                   common::cell(tree_converge_ms(s.h + 1, s.r), 1),
                   common::cell(flat_converge_ms(static_cast<int>(n)), 1)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: flat-ring latency is linear in n (625 nodes\n"
               "=> ~624ms); RGB and the tree both stay logarithmic-ish\n"
               "(sequential rings/levels along one root-to-leaf path), with\n"
               "RGB paying a small constant factor for full token circles\n"
               "versus the tree's straight flood.\n";
  return 0;
}
