// Experiment E11 (extension figure) — convergence latency and message cost
// vs group size: how long one membership change takes to reach every node
// as the hierarchy grows, RGB vs the tree baseline vs a flat ring.
//
// Complements E4 (fixed n, varying ring size) with the scaling dimension:
// RGB's depth grows logarithmically, so convergence time grows ~linearly in
// r*h while flat-ring time grows linearly in n.
//
// The per-shape simulations are the registered scenario "convergence.scale"
// (exp:: harness); this bench only renders the figure-style table.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "exp/exp.hpp"

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E11 / extension figure — convergence latency vs group size (1ms "
      "links)",
      "time until every node holds the change; RGB h=ring tiers, r=5.");

  const exp::TrialRunner runner;
  const exp::RunResult result =
      runner.run(*exp::builtin_scenarios().find("convergence.scale"));

  common::TextTable table({"n (APs)", "RGB (h,r)", "RGB ms", "tree ms",
                           "flat ring ms"});
  for (const exp::CellResult& cell : result.cells) {
    const int h = cell.params.get_int("h");
    const int r = cell.params.get_int("r");
    std::uint64_t n = 1;
    for (int i = 0; i < h; ++i) n *= static_cast<std::uint64_t>(r);
    table.add_row({common::cell(n),
                   "(" + std::to_string(h) + "," + std::to_string(r) + ")",
                   common::cell(cell.metric("rgb_ms").mean, 1),
                   common::cell(cell.metric("tree_ms").mean, 1),
                   common::cell(cell.metric("flat_ms").mean, 1)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: flat-ring latency is linear in n (625 nodes\n"
               "=> ~624ms); RGB and the tree both stay logarithmic-ish\n"
               "(sequential rings/levels along one root-to-leaf path), with\n"
               "RGB paying a small constant factor for full token circles\n"
               "versus the tree's straight flood.\n";
  return 0;
}
