// Experiment E2 — reproduces Table II of the paper: Function-Well
// probability of the ring-based hierarchy for (h=3, r=5, n=125) and
// (h=3, r=10, n=1000), f in {0.1%, 0.5%, 2%}, k in {1,2,3}, from
//   (a) the paper's numerical evaluation (reverse-engineered: one extra
//       ring-FW factor beyond printed formula (8) — see EXPERIMENTS.md),
//   (b) formula (8) exactly as printed,
//   (c) Monte-Carlo structural fault injection, and
//   (d) protocol-level simulation: crash NEs with probability f and test
//       whether a membership change still disseminates to the top ring.
//
// The Monte-Carlo and protocol trials run through the exp:: harness
// (scenarios "table2.fw_mc" and "table2.proto") on a worker pool; the
// aggregate is bit-identical for any thread count. `rgb_exp run table2.fw_mc`
// executes the same descriptor stand-alone.
#include <iostream>

#include "analysis/reliability.hpp"
#include "analysis/scalability.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "exp/exp.hpp"

int main() {
  using namespace rgb;  // NOLINT
  bench::banner(
      "E2 / Table II — Function-Well probability of the ring hierarchy",
      "fw_paper: the paper's numerical evaluation; fw_formula8: formula (8)\n"
      "at full precision; fw_mc: Monte-Carlo structural fault injection\n"
      "(100k trials, +-SE); proto: fraction of protocol-level simulations\n"
      "in which a change still reached the top ring (>= model, since the\n"
      "implementation repairs sequential faults the model calls partitions).");

  const exp::TrialRunner runner;  // worker pool: hardware concurrency
  const exp::RunResult mc =
      runner.run(*exp::builtin_scenarios().find("table2.fw_mc"));

  common::TextTable table({"n", "f(%)", "k", "fw_paper(%)", "fw_formula8(%)",
                           "fw_mc(%)", "mc_se(%)"});
  for (const exp::CellResult& cell : mc.cells) {
    const int h = cell.params.get_int("h");
    const int r = cell.params.get_int("r");
    const double f = cell.params.get("f");
    const int k = cell.params.get_int("k");
    const exp::MetricSummary& fw = cell.metric("fw");
    table.add_row(
        {common::cell(analysis::ring_ap_count(h, r)),
         common::cell(f * 100.0, 1), common::cell(k),
         common::percent_cell(analysis::prob_fw_hierarchy_paper(h, r, f, k)),
         common::percent_cell(analysis::prob_fw_hierarchy(h, r, f, k)),
         common::percent_cell(fw.mean),
         common::cell(fw.std_error * 100.0, 3)});
  }
  table.print(std::cout);

  std::cout << "\npaper Table II reference (fw %): n=125: 99.968 99.999 "
               "99.999 | 99.211 99.972 99.975 | 88.409 98.981 99.592\n"
               "                               n=1000: 99.500 99.994 99.996 "
               "| 88.448 99.215 99.864 | 16.094 45.470 72.038\n"
               "(matches the fw_paper column to its printed 3 decimals)\n";

  bench::banner("E2b — protocol-level dissemination under NE crashes",
                "20 trials per cell on the (h=2, r=5) hierarchy; larger f\n"
                "than the paper's to show the degradation shape quickly.");
  const exp::RunResult proto_result =
      runner.run(*exp::builtin_scenarios().find("table2.proto"));
  common::TextTable proto({"f(%)", "model_fw_k1(%)", "proto_success(%)"});
  for (const exp::CellResult& cell : proto_result.cells) {
    const double f = cell.params.get("f");
    proto.add_row({common::cell(f * 100.0, 1),
                   common::percent_cell(analysis::prob_fw_hierarchy(
                       cell.params.get_int("h"), cell.params.get_int("r"), f,
                       1)),
                   common::percent_cell(cell.metric("fw").mean)});
  }
  proto.print(std::cout);
  return 0;
}
