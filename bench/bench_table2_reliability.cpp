// Experiment E2 — reproduces Table II of the paper: Function-Well
// probability of the ring-based hierarchy for (h=3, r=5, n=125) and
// (h=3, r=10, n=1000), f in {0.1%, 0.5%, 2%}, k in {1,2,3}, from
//   (a) the paper's numerical evaluation (reverse-engineered: one extra
//       ring-FW factor beyond printed formula (8) — see EXPERIMENTS.md),
//   (b) formula (8) exactly as printed,
//   (c) Monte-Carlo structural fault injection, and
//   (d) protocol-level simulation: crash NEs with probability f and test
//       whether a membership change still disseminates to the top ring.
#include <iostream>

#include "analysis/reliability.hpp"
#include "analysis/scalability.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rgb;  // NOLINT

/// Fraction of trials in which a Member-Join reaches every alive top-ring
/// node despite uniform random NE crashes.
double protocol_level_fw(int h, int r, double f, int trials) {
  common::RngStream fault_rng{0xACE0FBA5E};
  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Simulator simulator;
    net::Network network{simulator,
                         common::RngStream{static_cast<std::uint64_t>(trial)}};
    core::RgbConfig config;
    config.retx_timeout = sim::msec(20);
    config.max_retx = 1;
    config.round_timeout = sim::msec(200);
    config.notify_timeout = sim::msec(150);
    config.max_notify_retx = 8;
    core::RgbSystem sys{network, config, core::HierarchyLayout{h, r}};
    for (const auto ne : sys.all_nes()) {
      if (ne == sys.aps().front()) continue;  // spare the origin
      if (fault_rng.chance(f)) sys.crash_ne(ne);
    }
    sys.join(common::Guid{1}, sys.aps().front());
    simulator.run_until(sim::sec(20));
    bool ok = true;
    for (const auto id : sys.rings(0).front()) {
      if (network.is_crashed(id)) continue;
      if (!sys.entity(id)->ring_members().contains(common::Guid{1})) {
        ok = false;
      }
    }
    if (ok) ++successes;
  }
  return static_cast<double>(successes) / trials;
}

}  // namespace

int main() {
  bench::banner(
      "E2 / Table II — Function-Well probability of the ring hierarchy",
      "fw_paper: the paper's numerical evaluation; fw_formula8: formula (8)\n"
      "at full precision; fw_mc: Monte-Carlo structural fault injection\n"
      "(100k trials, +-SE); proto: fraction of protocol-level simulations\n"
      "in which a change still reached the top ring (>= model, since the\n"
      "implementation repairs sequential faults the model calls partitions).");

  common::TextTable table({"n", "f(%)", "k", "fw_paper(%)", "fw_formula8(%)",
                           "fw_mc(%)", "mc_se(%)"});
  const int h = 3;
  for (const int r : {5, 10}) {
    for (const double f : {0.001, 0.005, 0.02}) {
      for (int k = 1; k <= 3; ++k) {
        common::RngStream mc_rng{0xBEEF + static_cast<std::uint64_t>(r * 100 + k)};
        const auto mc = analysis::monte_carlo_fw(h, r, f, k, 100'000, mc_rng);
        table.add_row(
            {common::cell(analysis::ring_ap_count(h, r)),
             common::cell(f * 100.0, 1), common::cell(k),
             common::percent_cell(analysis::prob_fw_hierarchy_paper(h, r, f, k)),
             common::percent_cell(analysis::prob_fw_hierarchy(h, r, f, k)),
             common::percent_cell(mc.probability),
             common::cell(mc.std_error * 100.0, 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\npaper Table II reference (fw %): n=125: 99.968 99.999 "
               "99.999 | 99.211 99.972 99.975 | 88.409 98.981 99.592\n"
               "                               n=1000: 99.500 99.994 99.996 "
               "| 88.448 99.215 99.864 | 16.094 45.470 72.038\n"
               "(matches the fw_paper column to its printed 3 decimals)\n";

  bench::banner("E2b — protocol-level dissemination under NE crashes",
                "20 trials per cell on the (h=2, r=5) hierarchy; larger f\n"
                "than the paper's to show the degradation shape quickly.");
  common::TextTable proto({"f(%)", "model_fw_k1(%)", "proto_success(%)"});
  for (const double f : {0.0, 0.01, 0.03, 0.05}) {
    proto.add_row({common::cell(f * 100.0, 1),
                   common::percent_cell(analysis::prob_fw_hierarchy(2, 5, f, 1)),
                   common::percent_cell(protocol_level_fw(2, 5, f, 20))});
  }
  proto.print(std::cout);
  return 0;
}
