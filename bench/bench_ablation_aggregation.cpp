// Experiment E8 — ablation of the self-optimising MQ (paper Section 4.2).
//
// A burst of b membership changes lands on one AP before the ring token is
// acquired. With aggregation the whole burst rides one round; without it
// every op pays its own round. Collapsing pairs (join+leave of the same
// member) disappear entirely under aggregation.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rgb;  // NOLINT

struct Outcome {
  std::uint64_t rounds;
  std::uint64_t hops;
  double converge_ms;
};

Outcome run_burst(bool aggregate, int burst, bool cancelling_pairs) {
  sim::Simulator simulator;
  net::Network network{simulator, common::RngStream{17}};
  core::RgbConfig config;
  config.aggregate_mq = aggregate;
  core::RgbSystem sys{network, config, core::HierarchyLayout{2, 5}};

  const auto ap = sys.aps().front();
  for (int i = 0; i < burst; ++i) {
    const common::Guid g{static_cast<std::uint64_t>(i + 1)};
    sys.join(g, ap);
    if (cancelling_pairs && i % 2 == 1) sys.leave(g);
  }
  simulator.run();
  return Outcome{sys.metrics().rounds_completed.value(),
                 bench::proposal_hops(network), sim::to_ms(simulator.now())};
}

}  // namespace

int main() {
  bench::banner(
      "E8 / ablation — self-optimising MQ aggregation (h=2, r=5 hierarchy)",
      "burst of joins at one AP before the token is acquired;\n"
      "\"+cancel\" rows add a leave for every second join, which\n"
      "aggregation annihilates before any propagation.");

  common::TextTable table({"workload", "aggregate", "rounds", "proposal hops",
                           "converge(ms)"});
  for (const int burst : {8, 32}) {
    for (const bool cancel : {false, true}) {
      for (const bool aggregate : {true, false}) {
        const auto out = run_burst(aggregate, burst, cancel);
        table.add_row({std::string("burst ") + std::to_string(burst) +
                           (cancel ? " +cancel" : ""),
                       aggregate ? "on" : "off", common::cell(out.rounds),
                       common::cell(out.hops),
                       common::cell(out.converge_ms, 1)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: aggregation turns O(burst) rounds into O(1)\n"
               "per ring and removes cancelled changes entirely; without it\n"
               "hops scale linearly with the burst size.\n";
  return 0;
}
