// bench_scale — the perf-trajectory bench (PR3, extended in PR4): sweeps
// the member count, measures join-phase throughput/bytes/divergence under
// both join modes (per-op dissemination vs kSnapshot bulk state transfer),
// steady-state event rate, kViewSync traffic (digest-first vs full-table
// anti-entropy) and peak RSS. All byte figures are real encoded bytes
// (wire codec metering). Emits the BENCH_*.json artifact consumed by
// EXPERIMENTS.md.
//
//   bench_scale [out.json]          # default sweep, all four modes
//
// A thin wrapper over the shared sweep engine; for custom sweeps use
// `rgb_exp bench` (same engine, full flag set).
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/bench.hpp"

int main(int argc, char** argv) {
  rgb::bench::banner(
      "bench_scale (PR4 perf trajectory)",
      "Join-phase cost (dissemination vs snapshot state transfer) and\n"
      "steady-state anti-entropy cost vs member count, on real encoded "
      "bytes\n(h=2, r=5, 30 NEs).");

  const rgb::exp::ScaleConfig base;  // defaults: h=2 r=5, 250ms probe, 10 ticks
  rgb::exp::SweepModes modes;
  modes.snapshot = true;  // sweep both join modes
  const std::vector<rgb::exp::ScaleStats> all = rgb::exp::run_scale_sweep(
      base, {1000, 20000, 100000}, modes, std::cout);

  if (argc > 1) {
    std::ofstream file{argv[1]};
    if (!file) {
      std::cerr << "bench_scale: cannot open '" << argv[1] << "'\n";
      return 1;
    }
    rgb::exp::write_bench_json(base, all, file);
    std::cout << "\nwrote " << argv[1] << "\n";
  } else {
    rgb::exp::write_bench_json(base, all, std::cout);
  }
  return rgb::exp::all_converged(all) ? 0 : 1;
}
